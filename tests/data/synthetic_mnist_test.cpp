#include "data/synthetic_mnist.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cellgan::data {
namespace {

TEST(SyntheticMnistTest, DatasetHasRequestedShape) {
  const Dataset ds = make_synthetic_mnist(100, 1);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.images.cols(), kImageDim);
  EXPECT_EQ(ds.labels.size(), 100u);
}

TEST(SyntheticMnistTest, PixelsInGanRange) {
  const Dataset ds = make_synthetic_mnist(50, 2);
  for (const float v : ds.images.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SyntheticMnistTest, LabelsAreBalanced) {
  const Dataset ds = make_synthetic_mnist(200, 3);
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), kNumClasses);
  for (const auto count : hist) EXPECT_EQ(count, 20u);
}

TEST(SyntheticMnistTest, DeterministicBySeed) {
  const Dataset a = make_synthetic_mnist(30, 7);
  const Dataset b = make_synthetic_mnist(30, 7);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    ASSERT_EQ(a.images.data()[i], b.images.data()[i]);
  }
}

TEST(SyntheticMnistTest, DifferentSeedsDiffer) {
  const Dataset a = make_synthetic_mnist(30, 7);
  const Dataset b = make_synthetic_mnist(30, 8);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    diff += std::abs(a.images.data()[i] - b.images.data()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticMnistTest, EveryDigitRendersInk) {
  common::Rng rng(5);
  SyntheticMnistOptions options;
  std::vector<float> image(kImageDim);
  for (std::uint32_t digit = 0; digit < kNumClasses; ++digit) {
    render_digit(digit, rng, options, image);
    int lit = 0;
    for (const float v : image) {
      if (v > 0.0f) ++lit;  // above mid-gray means inked
    }
    EXPECT_GT(lit, 20) << "digit " << digit << " rendered too little ink";
    EXPECT_LT(lit, static_cast<int>(kImageDim) / 2)
        << "digit " << digit << " flooded the canvas";
  }
}

TEST(SyntheticMnistTest, SamplesOfSameDigitVary) {
  common::Rng rng(6);
  SyntheticMnistOptions options;
  std::vector<float> a(kImageDim), b(kImageDim);
  render_digit(3, rng, options, a);
  render_digit(3, rng, options, b);
  double diff = 0.0;
  for (std::size_t i = 0; i < kImageDim; ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1.0);  // affine jitter must move pixels around
}

TEST(SyntheticMnistTest, ClassMeansAreDistinct) {
  // The ten modes must be separable or mode-coverage metrics are vacuous:
  // compare per-class mean images pairwise.
  const Dataset ds = make_synthetic_mnist(400, 9);
  std::vector<std::vector<double>> means(kNumClasses,
                                         std::vector<double>(kImageDim, 0.0));
  std::vector<int> counts(kNumClasses, 0);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    auto row = ds.images.row_span(i);
    auto& m = means[ds.labels[i]];
    for (std::size_t j = 0; j < kImageDim; ++j) m[j] += row[j];
    ++counts[ds.labels[i]];
  }
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    for (auto& v : means[c]) v /= counts[c];
  }
  for (std::size_t a = 0; a < kNumClasses; ++a) {
    for (std::size_t b = a + 1; b < kNumClasses; ++b) {
      double dist = 0.0;
      for (std::size_t j = 0; j < kImageDim; ++j) {
        const double d = means[a][j] - means[b][j];
        dist += d * d;
      }
      EXPECT_GT(std::sqrt(dist), 1.0) << "digits " << a << " and " << b
                                      << " are not separable";
    }
  }
}

TEST(SyntheticMnistTest, NoiseKnobAddsNoise) {
  common::Rng rng1(4), rng2(4);
  SyntheticMnistOptions clean;
  clean.pixel_noise = 0.0f;
  SyntheticMnistOptions noisy;
  noisy.pixel_noise = 0.1f;
  std::vector<float> a(kImageDim), b(kImageDim);
  render_digit(0, rng1, clean, a);
  render_digit(0, rng2, noisy, b);
  // Background pixels (far from strokes) should be exactly -1 only when clean.
  int exact_background_clean = 0, exact_background_noisy = 0;
  for (std::size_t i = 0; i < kImageDim; ++i) {
    if (a[i] == -1.0f) ++exact_background_clean;
    if (b[i] == -1.0f) ++exact_background_noisy;
  }
  EXPECT_GT(exact_background_clean, exact_background_noisy);
}

TEST(SyntheticMnistTest, SizedRenderingProducesAnyResolution) {
  common::Rng rng(11);
  SyntheticMnistOptions options;
  for (const std::size_t side : {8u, 16u, 32u, 64u}) {
    std::vector<float> image(side * side);
    render_digit_sized(3, rng, options, side, image);
    int lit = 0;
    for (const float v : image) {
      ASSERT_GE(v, -1.0f);
      ASSERT_LE(v, 1.0f);
      if (v > 0.0f) ++lit;
    }
    EXPECT_GT(lit, static_cast<int>(side)) << "side " << side;
  }
}

TEST(SyntheticMnistTest, SizedDatasetShape) {
  const Dataset ds = make_synthetic_digits(20, 32, 12);
  EXPECT_EQ(ds.size(), 20u);
  EXPECT_EQ(ds.images.cols(), 32u * 32u);
}

TEST(SyntheticMnistTest, ResolutionPreservesInkFraction) {
  // The same glyph rendered at 16 and 48 pixels should cover a similar
  // fraction of the canvas (vector re-rendering, not pixel scaling).
  common::Rng rng1(13), rng2(13);
  SyntheticMnistOptions options;
  options.pixel_noise = 0.0f;
  std::vector<float> small(16 * 16), large(48 * 48);
  render_digit_sized(0, rng1, options, 16, small);
  render_digit_sized(0, rng2, options, 48, large);
  auto ink_fraction = [](const std::vector<float>& image) {
    int lit = 0;
    for (const float v : image) {
      if (v > 0.0f) ++lit;
    }
    return static_cast<double>(lit) / image.size();
  };
  EXPECT_NEAR(ink_fraction(small), ink_fraction(large), 0.05);
}

TEST(SyntheticMnistDeathTest, InvalidDigitAborts) {
  common::Rng rng(1);
  SyntheticMnistOptions options;
  std::vector<float> image(kImageDim);
  EXPECT_DEATH(render_digit(10, rng, options, image), "precondition");
}

}  // namespace
}  // namespace cellgan::data
