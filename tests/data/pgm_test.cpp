#include "data/pgm.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/synthetic_mnist.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::data {
namespace {

class PgmTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const { return tmp_.file(name).string(); }
  testsupport::TempDir tmp_{"cellgan_pgm"};
};

TEST_F(PgmTest, SingleImageHeaderAndSize) {
  const Dataset ds = make_synthetic_mnist(1, 1);
  ASSERT_TRUE(write_pgm(path("one.pgm"), ds.images.row_span(0)));
  std::ifstream in(path("one.pgm"), std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, kImageSide);
  EXPECT_EQ(h, kImageSide);
  EXPECT_EQ(maxval, 255u);
  const auto total = std::filesystem::file_size(path("one.pgm"));
  EXPECT_GE(total, kImageDim);  // header + pixels
}

TEST_F(PgmTest, GridTilesImages) {
  const Dataset ds = make_synthetic_mnist(6, 2);
  ASSERT_TRUE(write_pgm_grid(path("grid.pgm"), ds.images.data(), 6, 3));
  std::ifstream in(path("grid.pgm"), std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  in >> magic >> w >> h;
  EXPECT_EQ(w, 3 * kImageSide);
  EXPECT_EQ(h, 2 * kImageSide);
}

TEST_F(PgmTest, RaggedLastRowStillWorks) {
  const Dataset ds = make_synthetic_mnist(5, 3);
  ASSERT_TRUE(write_pgm_grid(path("ragged.pgm"), ds.images.data(), 5, 3));
  std::ifstream in(path("ragged.pgm"), std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  in >> magic >> w >> h;
  EXPECT_EQ(w, 3 * kImageSide);
  EXPECT_EQ(h, 2 * kImageSide);  // ceil(5/3) = 2 tile rows
}

TEST_F(PgmTest, UnwritablePathFails) {
  const Dataset ds = make_synthetic_mnist(1, 1);
  EXPECT_FALSE(write_pgm("/nonexistent_dir_xyz/out.pgm", ds.images.row_span(0)));
}

TEST_F(PgmTest, SizedGridSupportsArbitraryResolutions) {
  const Dataset ds = make_synthetic_digits(4, 32, 9);
  ASSERT_TRUE(write_pgm_grid_sized(path("hi.pgm"), ds.images.data(), 4, 2, 32));
  std::ifstream in(path("hi.pgm"), std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  in >> magic >> w >> h;
  EXPECT_EQ(w, 64u);
  EXPECT_EQ(h, 64u);
}

TEST(AsciiArtTest, SizedVariantMatchesResolution) {
  const Dataset ds = make_synthetic_digits(1, 16, 10);
  const std::string art = ascii_art_sized(ds.images.row_span(0), 16);
  EXPECT_EQ(art.size(), 16u * 17u);
}

TEST(AsciiArtTest, ShapeAndCharset) {
  const Dataset ds = make_synthetic_mnist(1, 4);
  const std::string art = ascii_art(ds.images.row_span(0));
  EXPECT_EQ(art.size(), kImageSide * (kImageSide + 1));
  std::size_t newlines = 0;
  for (const char c : art) {
    if (c == '\n') {
      ++newlines;
    } else {
      EXPECT_NE(std::string(" .:-=+*#%@").find(c), std::string::npos)
          << "unexpected char '" << c << "'";
    }
  }
  EXPECT_EQ(newlines, kImageSide);
}

TEST(AsciiArtTest, InkShowsUp) {
  const Dataset ds = make_synthetic_mnist(1, 5);
  const std::string art = ascii_art(ds.images.row_span(0));
  std::size_t dark = 0;
  for (const char c : art) {
    if (c == '#' || c == '%' || c == '@' || c == '*') ++dark;
  }
  EXPECT_GT(dark, 10u);
}

}  // namespace
}  // namespace cellgan::data
