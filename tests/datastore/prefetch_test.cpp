// The prefetch pipeline: StoreFeed vs. the legacy DataLoader (bit-identical
// batch streams under the trainer's exact interleaving), EpochView sharding,
// and the concurrent-reader hammer the ASan job leans on.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic_mnist.hpp"
#include "datastore/batch_feed.hpp"
#include "datastore/epoch_view.hpp"
#include "datastore/prefetcher.hpp"
#include "datastore/sample_store.hpp"
#include "datastore/shuffle_service.hpp"
#include "datastore/stats.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::datastore {
namespace {

void expect_same_tensor(const tensor::Tensor& a, const tensor::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    ASSERT_EQ(da[i], db[i]) << "flat index " << i;
  }
}

TEST(ShuffleServiceTest, SharesTheLoadersFisherYatesExactly) {
  // Same seed, same length -> ShuffleService and DataLoader::reshuffle must
  // draw the identical permutation (both delegate to common::Rng::shuffle)
  // and leave their Rng streams in the same state.
  const data::Dataset dataset = data::make_synthetic_mnist(40, 11);
  common::Rng rng_loader(testsupport::deterministic_seed());
  common::Rng rng_service(testsupport::deterministic_seed());
  data::DataLoader loader(dataset, 8);
  ShuffleService service(dataset.size());
  EXPECT_EQ(service.order(), loader.order());  // both start at identity
  for (int epoch = 0; epoch < 5; ++epoch) {
    loader.reshuffle(rng_loader);
    service.reshuffle(rng_service);
    EXPECT_EQ(service.order(), loader.order());
  }
  EXPECT_EQ(rng_loader(), rng_service());  // streams advanced identically
}

TEST(StoreFeedTest, MatchesDataLoaderUnderTrainerInterleaving) {
  // Replicate CellTrainer's exact consumption pattern — reshuffle interleaved
  // with draws on ONE rng stream, a peek before every consuming read — and
  // require bit-identical tensors from both planes at every step.
  const data::Dataset dataset = data::make_synthetic_mnist(50, 17);
  const std::size_t batch = 8;  // 6 batches/epoch, tail dropped
  common::Rng rng_legacy(testsupport::deterministic_seed());
  common::Rng rng_store(testsupport::deterministic_seed());
  data::DataLoader loader(dataset, batch);
  StoreFeed feed(SampleStore::adopt(dataset), batch);
  ASSERT_EQ(feed.batches_per_epoch(), loader.batches_per_epoch());

  loader.reshuffle(rng_legacy);
  feed.reshuffle(rng_store);
  std::size_t next = 0;
  for (int draw = 0; draw < 40; ++draw) {
    if (next >= loader.batches_per_epoch()) {
      loader.reshuffle(rng_legacy);
      feed.reshuffle(rng_store);
      next = 0;
    }
    // Peek (evaluate_center_fitness), then consume (train) the same index.
    expect_same_tensor(feed.batch(next), loader.batch(next));
    expect_same_tensor(feed.batch(next), loader.batch(next));
    ++next;
  }
  EXPECT_EQ(feed.order(), loader.order());
}

TEST(StoreFeedTest, RestoreOrderReplaysCheckpointedEpoch) {
  const data::Dataset dataset = data::make_synthetic_mnist(32, 23);
  common::Rng rng(testsupport::deterministic_seed());
  data::DataLoader loader(dataset, 8);
  loader.reshuffle(rng);
  const std::vector<std::uint32_t> saved = loader.order();

  StoreFeed feed(SampleStore::adopt(dataset), 8);
  feed.restore_order(saved);  // the checkpoint-resume path
  EXPECT_EQ(feed.order(), saved);
  for (std::size_t i = 0; i < feed.batches_per_epoch(); ++i) {
    expect_same_tensor(feed.batch(i), loader.batch(i));
  }
}

TEST(StoreFeedTest, MakeFeedResolvesPlanes) {
  const data::Dataset dataset = data::make_synthetic_mnist(24, 29);
  auto legacy = make_feed(DataPlane::kLegacy, dataset, 8);
  auto store = make_feed(DataPlane::kStore, dataset, 8);
  EXPECT_EQ(legacy->plane(), DataPlane::kLegacy);
  EXPECT_EQ(store->plane(), DataPlane::kStore);
  EXPECT_EQ(legacy->batches_per_epoch(), store->batches_per_epoch());
  // Identity order at construction: both serve the same batches untouched.
  for (std::size_t i = 0; i < store->batches_per_epoch(); ++i) {
    expect_same_tensor(store->batch(i), legacy->batch(i));
  }
}

TEST(StoreFeedTest, CountersAccountForEveryRead) {
  const data::Dataset dataset = data::make_synthetic_mnist(64, 31);
  StoreFeed feed(SampleStore::adopt(dataset), 8);
  common::Rng rng(testsupport::deterministic_seed());
  const StatsSnapshot before = stats().snapshot();
  std::size_t reads = 0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    feed.reshuffle(rng);
    for (std::size_t i = 0; i < feed.batches_per_epoch(); ++i) {
      (void)feed.batch(i);
      ++reads;
    }
  }
  Prefetcher::global().drain();
  const StatsSnapshot after = stats().snapshot();
  // Every batch() resolved exactly one way: staged hit, waited-for stage, or
  // synchronous stall.
  EXPECT_EQ((after.prefetch_hits - before.prefetch_hits) +
                (after.prefetch_stalls - before.prefetch_stalls),
            reads);
  EXPECT_GE(after.staged_batches, before.staged_batches);
  EXPECT_GE(after.staging_depth, 1u);
}

TEST(EpochViewTest, ShardsPartitionTheEpochsBatches) {
  const data::Dataset dataset = data::make_synthetic_mnist(60, 37);
  auto store = SampleStore::adopt(dataset);
  ShuffleService shuffle(dataset.size());
  common::Rng rng(testsupport::deterministic_seed());
  shuffle.reshuffle(rng);
  const EpochView full(store, shuffle.order(), 6);  // 10 batches

  for (std::size_t lanes : {1u, 2u, 3u, 4u, 7u}) {
    std::size_t covered = 0;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const EpochView shard = full.shard(lane, lanes);
      for (std::size_t b = 0; b < shard.batches(); ++b) {
        expect_same_tensor(shard.batch(b), full.batch(covered + b));
      }
      covered += shard.batches();
    }
    EXPECT_EQ(covered, full.batches()) << lanes << " lanes";
  }
}

TEST(EpochViewTest, ConcurrentShardedReadersSeeConsistentData) {
  // The ASan hammer: many lanes reading overlapping + sharded views of one
  // store concurrently. Every read must reproduce the single-threaded
  // reference exactly; any data race trips the sanitizer job.
  const data::Dataset dataset = data::make_synthetic_mnist(96, 41);
  auto store = SampleStore::adopt(dataset);
  ShuffleService shuffle(dataset.size());
  common::Rng rng(testsupport::deterministic_seed());
  shuffle.reshuffle(rng);
  const std::size_t batch = 8;
  const EpochView full(store, shuffle.order(), batch);

  std::vector<tensor::Tensor> reference;
  for (std::size_t b = 0; b < full.batches(); ++b) reference.push_back(full.batch(b));

  const std::size_t lanes = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    threads.emplace_back([&, lane] {
      const EpochView shard = full.shard(lane, lanes);
      const std::size_t base = full.batches() * lane / lanes;
      for (int iter = 0; iter < 50; ++iter) {
        // Sharded read...
        for (std::size_t b = 0; b < shard.batches(); ++b) {
          const tensor::Tensor got = shard.batch(b);
          const auto want = reference[base + b].data();
          const auto have = got.data();
          for (std::size_t i = 0; i < have.size(); ++i) {
            if (have[i] != want[i]) {
              mismatches.fetch_add(1);
              return;
            }
          }
        }
        // ...and an overlapping full-view read from every lane.
        const std::size_t b = (lane + static_cast<std::size_t>(iter)) % full.batches();
        const tensor::Tensor got = full.batch(b);
        const auto want = reference[b].data();
        const auto have = got.data();
        for (std::size_t i = 0; i < have.size(); ++i) {
          if (have[i] != want[i]) {
            mismatches.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(EpochViewTest, ConcurrentStoreFeedsShareOneStore) {
  // Several feeds (as parallel lanes would create) over one interned store,
  // each on its own thread with its own rng/order, all prefetching through
  // the shared pool — every feed must match its private legacy loader.
  const data::Dataset dataset = data::make_synthetic_mnist(48, 43);
  const std::size_t lanes = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    threads.emplace_back([&, lane] {
      common::Rng rng_a(testsupport::deterministic_seed(lane));
      common::Rng rng_b(testsupport::deterministic_seed(lane));
      data::DataLoader loader(dataset, 8);
      StoreFeed feed(SampleStore::for_dataset(dataset), 8);
      for (int epoch = 0; epoch < 4; ++epoch) {
        loader.reshuffle(rng_a);
        feed.reshuffle(rng_b);
        for (std::size_t i = 0; i < loader.batches_per_epoch(); ++i) {
          const auto a = loader.batch(i).data();
          const auto b = feed.batch(i).data();
          for (std::size_t j = 0; j < a.size(); ++j) {
            if (a[j] != b[j]) {
              mismatches.fetch_add(1);
              return;
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace cellgan::datastore
