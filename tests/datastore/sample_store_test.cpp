// SampleStore: mmap ingest validation (every named failure path), staging
// bit-identity against the legacy IDX loader, and registry interning.
#include "datastore/sample_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "data/dataset.hpp"
#include "data/idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "datastore/errors.hpp"
#include "datastore/stats.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::datastore {
namespace {

class SampleStoreTest : public ::testing::Test {
 protected:
  std::string path(const char* name) const { return tmp_.file(name).string(); }

  /// Write a deterministic idx3-ubyte image file with `count` samples.
  std::string write_images(const char* name, std::uint32_t count,
                           std::uint32_t side = 28) {
    data::IdxImages images;
    images.count = count;
    images.rows = side;
    images.cols = side;
    images.pixels.resize(std::size_t{count} * side * side);
    for (std::size_t i = 0; i < images.pixels.size(); ++i) {
      images.pixels[i] = static_cast<std::uint8_t>((i * 7 + 13) % 256);
    }
    const std::string p = path(name);
    EXPECT_TRUE(data::write_idx_images(p, images));
    return p;
  }

  testsupport::TempDir tmp_{"cellgan_store"};
};

TEST_F(SampleStoreTest, MapIdxStagesBitIdenticalToLegacyLoader) {
  // Build a complete MNIST-shaped IDX quartet, load it through the legacy
  // data::load_mnist_idx pipeline, and check the store's staged floats match
  // the loader's normalization bit for bit — the foundation of every
  // legacy-vs-store parity guarantee.
  write_images("train-images-idx3-ubyte", 12);
  write_images("t10k-images-idx3-ubyte", 4);
  ASSERT_TRUE(data::write_idx_labels(path("train-labels-idx1-ubyte"),
                                     {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1}));
  ASSERT_TRUE(data::write_idx_labels(path("t10k-labels-idx1-ubyte"), {1, 2, 3, 4}));
  auto loaded = data::load_mnist_idx(tmp_.path().string());
  ASSERT_TRUE(loaded.has_value());
  const data::Dataset& train = loaded->first;

  auto store = SampleStore::map_idx(path("train-images-idx3-ubyte"));
  ASSERT_TRUE(store->mmap_backed());
  EXPECT_EQ(store->samples(), 12u);
  EXPECT_EQ(store->sample_dim(), data::kImageDim);
  EXPECT_EQ(store->bytes_mapped(), 16u + 12u * data::kImageDim);

  std::vector<float> staged(data::kImageDim);
  for (std::size_t row = 0; row < store->samples(); ++row) {
    store->stage_row(row, staged.data());
    const auto expected = train.images.data().subspan(row * data::kImageDim,
                                                      data::kImageDim);
    for (std::size_t j = 0; j < data::kImageDim; ++j) {
      ASSERT_EQ(staged[j], expected[j]) << "row " << row << " col " << j;
    }
  }
}

TEST_F(SampleStoreTest, MissingFileThrowsNamedError) {
  EXPECT_THROW(SampleStore::map_idx(path("nope")), MissingFileError);
}

TEST_F(SampleStoreTest, SmallerThanHeaderThrowsTruncated) {
  std::FILE* f = std::fopen(path("tiny").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("idx", f);
  std::fclose(f);
  EXPECT_THROW(SampleStore::map_idx(path("tiny")), TruncatedFileError);
}

TEST_F(SampleStoreTest, EmptyFileThrowsTruncated) {
  std::FILE* f = std::fopen(path("empty").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  EXPECT_THROW(SampleStore::map_idx(path("empty")), TruncatedFileError);
}

TEST_F(SampleStoreTest, TruncatedPayloadThrowsTruncated) {
  const std::string p = write_images("trunc", 10);
  const auto full = std::filesystem::file_size(p);
  std::filesystem::resize_file(p, full / 2);
  EXPECT_THROW(SampleStore::map_idx(p), TruncatedFileError);
}

TEST_F(SampleStoreTest, BadMagicThrowsNamedError) {
  ASSERT_TRUE(data::write_idx_labels(path("labels"), std::vector<std::uint8_t>(64, 1)));
  EXPECT_THROW(SampleStore::map_idx(path("labels")), BadMagicError);
}

TEST_F(SampleStoreTest, ImplausibleDimensionsThrowBadMagic) {
  std::FILE* f = std::fopen(path("dims").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::uint8_t header[16] = {0, 0, 8, 3, 0, 0, 0, 1,
                                   0xFF, 0xFF, 0xFF, 0xFF,  // rows = 4G
                                   0, 0, 0, 28};
  ASSERT_EQ(std::fwrite(header, 1, 16, f), 16u);
  std::fclose(f);
  EXPECT_THROW(SampleStore::map_idx(path("dims")), BadMagicError);
}

TEST_F(SampleStoreTest, ZeroSamplesThrowsEmptyStore) {
  std::FILE* f = std::fopen(path("zero").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const std::uint8_t header[16] = {0, 0, 8, 3, 0, 0, 0, 0,  // count = 0
                                   0, 0, 0, 28, 0, 0, 0, 28};
  ASSERT_EQ(std::fwrite(header, 1, 16, f), 16u);
  std::fclose(f);
  EXPECT_THROW(SampleStore::map_idx(path("zero")), EmptyStoreError);
}

TEST_F(SampleStoreTest, AdoptStagesDatasetRowsWithoutCopying) {
  const data::Dataset dataset = data::make_synthetic_mnist(8, 21);
  auto store = SampleStore::adopt(dataset);
  EXPECT_FALSE(store->mmap_backed());
  EXPECT_EQ(store->bytes_mapped(), 0u);
  EXPECT_EQ(store->samples(), 8u);
  std::vector<float> staged(store->sample_dim());
  for (std::size_t row = 0; row < store->samples(); ++row) {
    store->stage_row(row, staged.data());
    const auto expected =
        dataset.images.data().subspan(row * store->sample_dim(), store->sample_dim());
    for (std::size_t j = 0; j < store->sample_dim(); ++j) {
      ASSERT_EQ(staged[j], expected[j]);
    }
  }
}

TEST_F(SampleStoreTest, ForDatasetInternsOneStorePerDataset) {
  const data::Dataset a = data::make_synthetic_mnist(6, 5);
  const data::Dataset b = data::make_synthetic_mnist(6, 6);
  auto store_a1 = SampleStore::for_dataset(a);
  auto store_a2 = SampleStore::for_dataset(a);
  auto store_b = SampleStore::for_dataset(b);
  EXPECT_EQ(store_a1.get(), store_a2.get());  // every rank/lane shares one store
  EXPECT_NE(store_a1.get(), store_b.get());
}

TEST_F(SampleStoreTest, BindIdxServesMappedBytesForTheDataset) {
  write_images("train-images-idx3-ubyte", 12);
  write_images("t10k-images-idx3-ubyte", 4);
  ASSERT_TRUE(data::write_idx_labels(path("train-labels-idx1-ubyte"),
                                     {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1}));
  ASSERT_TRUE(data::write_idx_labels(path("t10k-labels-idx1-ubyte"), {1, 2, 3, 4}));
  auto loaded = data::load_mnist_idx(tmp_.path().string());
  ASSERT_TRUE(loaded.has_value());

  auto bound =
      SampleStore::bind_idx(loaded->first, path("train-images-idx3-ubyte"));
  ASSERT_TRUE(bound->mmap_backed());
  // Feeds that intern the store for this dataset now get the mapped one.
  auto interned = SampleStore::for_dataset(loaded->first);
  EXPECT_EQ(interned.get(), bound.get());
}

TEST_F(SampleStoreTest, BindIdxRejectsShapeMismatch) {
  const data::Dataset dataset = data::make_synthetic_mnist(5, 3);
  write_images("wrong-count", 9);
  EXPECT_THROW(SampleStore::bind_idx(dataset, path("wrong-count")), DataStoreError);
}

TEST_F(SampleStoreTest, MappingCountsIntoGlobalStats) {
  const StatsSnapshot before = stats().snapshot();
  const std::string p = write_images("counted", 3);
  auto store = SampleStore::map_idx(p);
  const StatsSnapshot after = stats().snapshot();
  EXPECT_EQ(after.stores_created, before.stores_created + 1);
  EXPECT_EQ(after.bytes_mapped, before.bytes_mapped + store->bytes_mapped());
}

}  // namespace
}  // namespace cellgan::datastore
