#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "tensor/ops.hpp"

namespace cellgan::nn {
namespace {

Sequential make_mlp(common::Rng& rng) {
  Sequential net;
  net.add(std::make_unique<Linear>(4, 8));
  net.add(std::make_unique<Tanh>());
  net.add(std::make_unique<Linear>(8, 2));
  xavier_uniform_init(net, rng);
  return net;
}

TEST(SequentialTest, ForwardChainsLayers) {
  common::Rng rng(1);
  Sequential net = make_mlp(rng);
  const tensor::Tensor x = tensor::Tensor::randn(3, 4, rng);
  const tensor::Tensor y = net.forward(x);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(SequentialTest, ParameterCountMatchesLayerSum) {
  common::Rng rng(2);
  Sequential net = make_mlp(rng);
  // (4+1)*8 + (8+1)*2
  EXPECT_EQ(net.parameter_count(), 40u + 18u);
  EXPECT_EQ(net.parameters().size(), 4u);  // two weights + two biases
}

TEST(SequentialTest, FlattenLoadRoundtrip) {
  common::Rng rng(3);
  Sequential net = make_mlp(rng);
  const std::vector<float> flat = net.flatten_parameters();
  EXPECT_EQ(flat.size(), net.parameter_count());

  Sequential other = make_mlp(rng);  // different random init
  other.load_parameters(flat);
  EXPECT_EQ(other.flatten_parameters(), flat);

  // Networks with identical parameters produce identical outputs.
  const tensor::Tensor x = tensor::Tensor::randn(2, 4, rng);
  const tensor::Tensor y1 = net.forward(x);
  const tensor::Tensor y2 = other.forward(x);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
}

TEST(SequentialDeathTest, LoadWrongSizeAborts) {
  common::Rng rng(4);
  Sequential net = make_mlp(rng);
  std::vector<float> wrong(net.parameter_count() + 1, 0.0f);
  EXPECT_DEATH(net.load_parameters(wrong), "condition");
}

TEST(SequentialTest, BackwardPropagatesThroughAllLayers) {
  common::Rng rng(5);
  Sequential net = make_mlp(rng);
  const tensor::Tensor x = tensor::Tensor::randn(2, 4, rng);
  (void)net.forward(x);
  const tensor::Tensor dx = net.backward(tensor::Tensor::full(2, 2, 1.0f));
  EXPECT_EQ(dx.rows(), 2u);
  EXPECT_EQ(dx.cols(), 4u);
  // Parameter gradients must be populated on every Linear layer.
  for (auto* g : net.gradients()) {
    float norm = 0.0f;
    for (const float v : g->data()) norm += std::abs(v);
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(SequentialTest, ZeroGradClearsAllLayers) {
  common::Rng rng(6);
  Sequential net = make_mlp(rng);
  const tensor::Tensor x = tensor::Tensor::randn(2, 4, rng);
  (void)net.forward(x);
  (void)net.backward(tensor::Tensor::full(2, 2, 1.0f));
  net.zero_grad();
  for (auto* g : net.gradients()) {
    for (const float v : g->data()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(SequentialTest, EmptySequentialIsIdentity) {
  Sequential net;
  common::Rng rng(7);
  const tensor::Tensor x = tensor::Tensor::randn(2, 3, rng);
  const tensor::Tensor y = net.forward(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], x.data()[i]);
  }
  EXPECT_EQ(net.parameter_count(), 0u);
}

TEST(SequentialTest, XavierInitBoundsRespectFanInOut) {
  common::Rng rng(8);
  Sequential net;
  net.add(std::make_unique<Linear>(100, 50));
  xavier_uniform_init(net, rng);
  auto* linear = dynamic_cast<Linear*>(&net.layer(0));
  ASSERT_NE(linear, nullptr);
  const double bound = std::sqrt(6.0 / 150.0);
  for (const float w : linear->weight().data()) {
    EXPECT_LE(std::abs(w), bound + 1e-6);
  }
  for (const float b : linear->bias().data()) EXPECT_EQ(b, 0.0f);
}

TEST(SequentialTest, NormalInitSetsGaussianWeights) {
  common::Rng rng(9);
  Sequential net;
  net.add(std::make_unique<Linear>(64, 64));
  normal_init(net, rng, 0.05f);
  auto* linear = dynamic_cast<Linear*>(&net.layer(0));
  double sum_sq = 0.0;
  for (const float w : linear->weight().data()) sum_sq += static_cast<double>(w) * w;
  const double stddev = std::sqrt(sum_sq / linear->weight().size());
  EXPECT_NEAR(stddev, 0.05, 0.01);
}

}  // namespace
}  // namespace cellgan::nn
