#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"

namespace cellgan::nn {
namespace {

/// One-parameter "network" for closed-form optimizer checks.
class ScalarLayer final : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override { return input; }
  tensor::Tensor backward(const tensor::Tensor& grad) override { return grad; }
  std::vector<tensor::Tensor*> parameters() override { return {&param_}; }
  std::vector<tensor::Tensor*> gradients() override { return {&grad_}; }
  void zero_grad() override { grad_.fill(0.0f); }
  std::string name() const override { return "Scalar"; }

  tensor::Tensor param_{1, 1, {1.0f}};
  tensor::Tensor grad_{1, 1, {0.0f}};
};

TEST(SgdTest, StepIsParamMinusLrGrad) {
  ScalarLayer layer;
  layer.grad_.at(0, 0) = 2.0f;
  Sgd sgd(0.1);
  sgd.step(layer);
  EXPECT_NEAR(layer.param_.at(0, 0), 1.0f - 0.1f * 2.0f, 1e-6f);
}

TEST(SgdTest, LearningRateIsMutable) {
  Sgd sgd(0.1);
  sgd.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.5);
}

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  ScalarLayer layer;
  layer.grad_.at(0, 0) = 3.0f;
  Adam adam(0.01);
  adam.step(layer);
  EXPECT_NEAR(layer.param_.at(0, 0), 1.0f - 0.01f, 1e-4f);
}

TEST(AdamTest, MatchesReferenceImplementationForThreeSteps) {
  // Reference computed with the textbook Adam recurrences.
  const double lr = 0.1, b1 = 0.9, b2 = 0.999, eps = 1e-8;
  double p = 1.0, m = 0.0, v = 0.0;
  const double grads[3] = {2.0, -1.0, 0.5};

  ScalarLayer layer;
  Adam adam(lr, b1, b2, eps);
  for (int t = 1; t <= 3; ++t) {
    const double g = grads[t - 1];
    m = b1 * m + (1 - b1) * g;
    v = b2 * v + (1 - b2) * g * g;
    const double mhat = m / (1 - std::pow(b1, t));
    const double vhat = v / (1 - std::pow(b2, t));
    p -= lr * mhat / (std::sqrt(vhat) + eps);

    layer.grad_.at(0, 0) = static_cast<float>(g);
    adam.step(layer);
    EXPECT_NEAR(layer.param_.at(0, 0), p, 1e-4) << "step " << t;
  }
  EXPECT_EQ(adam.steps_taken(), 3u);
}

TEST(AdamTest, ResetClearsMomentsAndStepCount) {
  ScalarLayer layer;
  layer.grad_.at(0, 0) = 1.0f;
  Adam adam(0.1);
  adam.step(layer);
  adam.reset();
  EXPECT_EQ(adam.steps_taken(), 0u);
  // After reset, the next step behaves like a first step again.
  const float before = layer.param_.at(0, 0);
  layer.grad_.at(0, 0) = 1.0f;
  adam.step(layer);
  EXPECT_NEAR(layer.param_.at(0, 0), before - 0.1f, 1e-4f);
}

TEST(AdamTest, LearningRateChangeKeepsMoments) {
  // Mutating lr mid-training (Lipizzaner's hyperparameter mutation) must not
  // reset Adam state: the second step with halved lr should be ~half the
  // size of the same step with original lr, not a fresh first step.
  ScalarLayer a_layer, b_layer;
  Adam a(0.1), b(0.1);
  a_layer.grad_.at(0, 0) = 1.0f;
  b_layer.grad_.at(0, 0) = 1.0f;
  a.step(a_layer);
  b.step(b_layer);
  b.set_learning_rate(0.05);
  a_layer.grad_.at(0, 0) = 1.0f;
  b_layer.grad_.at(0, 0) = 1.0f;
  const float a_before = a_layer.param_.at(0, 0);
  const float b_before = b_layer.param_.at(0, 0);
  a.step(a_layer);
  b.step(b_layer);
  const float a_delta = a_before - a_layer.param_.at(0, 0);
  const float b_delta = b_before - b_layer.param_.at(0, 0);
  EXPECT_NEAR(b_delta, 0.5f * a_delta, 1e-5f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (p - 3)^2; gradient = 2(p - 3).
  ScalarLayer layer;
  Adam adam(0.1);
  for (int i = 0; i < 500; ++i) {
    layer.grad_.at(0, 0) = 2.0f * (layer.param_.at(0, 0) - 3.0f);
    adam.step(layer);
  }
  EXPECT_NEAR(layer.param_.at(0, 0), 3.0f, 0.05f);
}

TEST(AdamTest, TrainsLinearRegression) {
  // y = x * w_true; recover w via MSE gradient steps on a Linear layer.
  common::Rng rng(11);
  Linear layer(2, 1);
  layer.weight().fill(0.0f);
  Adam adam(0.05);
  const tensor::Tensor w_true(2, 1, {0.5f, -1.5f});
  for (int step = 0; step < 400; ++step) {
    const tensor::Tensor x = tensor::Tensor::randn(16, 2, rng);
    const tensor::Tensor target = tensor::matmul(x, w_true);
    layer.zero_grad();
    const tensor::Tensor y = layer.forward(x);
    // dL/dy for L = mean((y - t)^2) is 2(y - t)/n.
    tensor::Tensor dy = tensor::sub(y, target);
    for (auto& v : dy.data()) v *= 2.0f / 16.0f;
    (void)layer.backward(dy);
    adam.step(layer);
  }
  EXPECT_NEAR(layer.weight().at(0, 0), 0.5f, 0.05f);
  EXPECT_NEAR(layer.weight().at(1, 0), -1.5f, 0.05f);
}

}  // namespace
}  // namespace cellgan::nn
