#include "nn/gan_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace cellgan::nn {
namespace {

TEST(GanModelsTest, PaperArchMatchesTableI) {
  const GanArch arch = GanArch::paper();
  EXPECT_EQ(arch.latent_dim, 64u);     // input neurons
  EXPECT_EQ(arch.hidden_dim, 256u);    // neurons per hidden layer
  EXPECT_EQ(arch.hidden_layers, 2u);   // number of hidden layers
  EXPECT_EQ(arch.image_dim, 784u);     // output neurons (28x28)
}

TEST(GanModelsTest, GeneratorParameterCountMatchesFormula) {
  common::Rng rng(1);
  for (const GanArch& arch : {GanArch::paper(), GanArch::tiny()}) {
    Sequential g = make_generator(arch, rng);
    EXPECT_EQ(g.parameter_count(), arch.generator_parameter_count());
  }
}

TEST(GanModelsTest, DiscriminatorParameterCountMatchesFormula) {
  common::Rng rng(2);
  for (const GanArch& arch : {GanArch::paper(), GanArch::tiny()}) {
    Sequential d = make_discriminator(arch, rng);
    EXPECT_EQ(d.parameter_count(), arch.discriminator_parameter_count());
  }
}

TEST(GanModelsTest, PaperGeneratorHasExpectedSize) {
  // (64+1)*256 + (256+1)*256 + (256+1)*784 = 16640 + 65792 + 201488
  EXPECT_EQ(GanArch::paper().generator_parameter_count(), 283920u);
}

TEST(GanModelsTest, PaperDiscriminatorHasExpectedSize) {
  // (784+1)*256 + (256+1)*256 + (256+1)*1 = 200960 + 65792 + 257
  EXPECT_EQ(GanArch::paper().discriminator_parameter_count(), 267009u);
}

TEST(GanModelsTest, GeneratorOutputIsTanhBounded) {
  common::Rng rng(3);
  const GanArch arch = GanArch::tiny();
  Sequential g = make_generator(arch, rng);
  const tensor::Tensor z = tensor::Tensor::randn(16, arch.latent_dim, rng, 3.0f);
  const tensor::Tensor images = g.forward(z);
  EXPECT_EQ(images.cols(), arch.image_dim);
  for (const float v : images.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(GanModelsTest, DiscriminatorEmitsOneLogitPerSample) {
  common::Rng rng(4);
  const GanArch arch = GanArch::tiny();
  Sequential d = make_discriminator(arch, rng);
  const tensor::Tensor x = tensor::Tensor::randn(8, arch.image_dim, rng);
  const tensor::Tensor logits = d.forward(x);
  EXPECT_EQ(logits.rows(), 8u);
  EXPECT_EQ(logits.cols(), 1u);
  for (const float v : logits.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GanModelsTest, HiddenLayerCountIsRespected) {
  common::Rng rng(5);
  GanArch arch = GanArch::tiny();
  arch.hidden_layers = 3;
  Sequential g = make_generator(arch, rng);
  // hidden_layers Linear+Tanh pairs plus the output Linear+Tanh.
  EXPECT_EQ(g.num_layers(), 2 * (arch.hidden_layers + 1));
  EXPECT_EQ(g.parameter_count(), arch.generator_parameter_count());
}

TEST(GanModelsTest, DifferentSeedsGiveDifferentInit) {
  common::Rng rng1(10), rng2(11);
  Sequential g1 = make_generator(GanArch::tiny(), rng1);
  Sequential g2 = make_generator(GanArch::tiny(), rng2);
  EXPECT_NE(g1.flatten_parameters(), g2.flatten_parameters());
}

TEST(GanModelsTest, SameSeedGivesIdenticalInit) {
  common::Rng rng1(10), rng2(10);
  Sequential g1 = make_generator(GanArch::tiny(), rng1);
  Sequential g2 = make_generator(GanArch::tiny(), rng2);
  EXPECT_EQ(g1.flatten_parameters(), g2.flatten_parameters());
}

}  // namespace
}  // namespace cellgan::nn
