#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace cellgan::nn {
namespace {

TEST(LinearTest, ForwardComputesXWPlusB) {
  Linear layer(2, 3);
  layer.weight() = tensor::Tensor(2, 3, {1, 2, 3, 4, 5, 6});
  layer.bias() = tensor::Tensor(1, 3, {10, 20, 30});
  const tensor::Tensor x(1, 2, {1, 1});
  const tensor::Tensor y = layer.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 4 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 5 + 20);
  EXPECT_FLOAT_EQ(y.at(0, 2), 3 + 6 + 30);
}

TEST(LinearTest, ParameterAndGradientListsAlign) {
  Linear layer(4, 2);
  const auto params = layer.parameters();
  const auto grads = layer.gradients();
  ASSERT_EQ(params.size(), 2u);
  ASSERT_EQ(grads.size(), 2u);
  EXPECT_TRUE(params[0]->same_shape(*grads[0]));
  EXPECT_TRUE(params[1]->same_shape(*grads[1]));
}

TEST(LinearTest, BackwardWeightGradientMatchesFiniteDifference) {
  common::Rng rng(1);
  Linear layer(3, 2);
  layer.weight() = tensor::Tensor::randn(3, 2, rng);
  layer.bias() = tensor::Tensor::randn(1, 2, rng);
  const tensor::Tensor x = tensor::Tensor::randn(4, 3, rng);

  // L = sum(forward(x)); analytic gradients:
  layer.zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(tensor::Tensor::full(4, 2, 1.0f));
  const tensor::Tensor dw = *layer.gradients()[0];
  const tensor::Tensor db = *layer.gradients()[1];

  const float eps = 1e-2f;
  for (std::size_t i = 0; i < layer.weight().size(); ++i) {
    const float original = layer.weight().data()[i];
    layer.weight().data()[i] = original + eps;
    const float up = tensor::sum(layer.forward(x));
    layer.weight().data()[i] = original - eps;
    const float down = tensor::sum(layer.forward(x));
    layer.weight().data()[i] = original;
    EXPECT_NEAR(dw.data()[i], (up - down) / (2 * eps), 2e-2f) << "weight " << i;
  }
  for (std::size_t i = 0; i < layer.bias().size(); ++i) {
    const float original = layer.bias().data()[i];
    layer.bias().data()[i] = original + eps;
    const float up = tensor::sum(layer.forward(x));
    layer.bias().data()[i] = original - eps;
    const float down = tensor::sum(layer.forward(x));
    layer.bias().data()[i] = original;
    EXPECT_NEAR(db.data()[i], (up - down) / (2 * eps), 2e-2f) << "bias " << i;
  }
}

TEST(LinearTest, BackwardInputGradientIsDyWT) {
  common::Rng rng(2);
  Linear layer(3, 2);
  layer.weight() = tensor::Tensor::randn(3, 2, rng);
  const tensor::Tensor x = tensor::Tensor::randn(1, 3, rng);
  (void)layer.forward(x);
  const tensor::Tensor dy(1, 2, {1.0f, 2.0f});
  const tensor::Tensor dx = layer.backward(dy);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(dx.at(0, j),
                dy.at(0, 0) * layer.weight().at(j, 0) +
                    dy.at(0, 1) * layer.weight().at(j, 1),
                1e-5f);
  }
}

TEST(LinearTest, GradientsAccumulateAcrossBackwards) {
  common::Rng rng(3);
  Linear layer(2, 2);
  layer.weight() = tensor::Tensor::randn(2, 2, rng);
  const tensor::Tensor x = tensor::Tensor::randn(1, 2, rng);
  layer.zero_grad();
  (void)layer.forward(x);
  (void)layer.backward(tensor::Tensor::full(1, 2, 1.0f));
  const tensor::Tensor once = *layer.gradients()[0];
  (void)layer.forward(x);
  (void)layer.backward(tensor::Tensor::full(1, 2, 1.0f));
  const tensor::Tensor twice = *layer.gradients()[0];
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(twice.data()[i], 2.0f * once.data()[i], 1e-5f);
  }
}

TEST(LinearTest, ZeroGradClears) {
  common::Rng rng(4);
  Linear layer(2, 2);
  const tensor::Tensor x = tensor::Tensor::randn(1, 2, rng);
  (void)layer.forward(x);
  (void)layer.backward(tensor::Tensor::full(1, 2, 1.0f));
  layer.zero_grad();
  for (const auto* g : layer.gradients()) {
    for (const float v : g->data()) EXPECT_EQ(v, 0.0f);
  }
}

TEST(LinearDeathTest, WrongInputWidthAborts) {
  Linear layer(3, 2);
  tensor::Tensor x(1, 4);
  EXPECT_DEATH((void)layer.forward(x), "precondition");
}

}  // namespace
}  // namespace cellgan::nn
