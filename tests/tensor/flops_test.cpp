// The flop counter feeds the virtual-time model, so its accounting is a
// tested contract, not a debug aid.
#include "tensor/flops.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace cellgan::tensor {
namespace {

TEST(FlopsTest, CountAccumulatesAndExchanges) {
  exchange_thread_flops();
  count_flops(100);
  count_flops(50);
  EXPECT_EQ(thread_flops(), 150u);
  EXPECT_EQ(exchange_thread_flops(), 150u);
  EXPECT_EQ(thread_flops(), 0u);
}

TEST(FlopsTest, MatmulCharges2MKN) {
  exchange_thread_flops();
  common::Rng rng(1);
  const Tensor a = Tensor::randn(3, 5, rng);
  const Tensor b = Tensor::randn(5, 7, rng);
  (void)matmul(a, b);
  EXPECT_EQ(exchange_thread_flops(), 2ULL * 3 * 5 * 7);
}

TEST(FlopsTest, MatmulVariantsChargeSameWork) {
  common::Rng rng(2);
  const Tensor a = Tensor::randn(6, 4, rng);
  const Tensor b = Tensor::randn(6, 5, rng);
  exchange_thread_flops();
  (void)matmul_tn(a, b);  // (4x6)*(6x5)
  EXPECT_EQ(exchange_thread_flops(), 2ULL * 4 * 6 * 5);

  const Tensor c = Tensor::randn(3, 4, rng);
  const Tensor d = Tensor::randn(7, 4, rng);
  exchange_thread_flops();
  (void)matmul_nt(c, d);  // (3x4)*(4x7)
  EXPECT_EQ(exchange_thread_flops(), 2ULL * 3 * 4 * 7);
}

TEST(FlopsTest, ElementwiseChargesPerElement) {
  common::Rng rng(3);
  const Tensor a = Tensor::randn(4, 4, rng);
  const Tensor b = Tensor::randn(4, 4, rng);
  exchange_thread_flops();
  (void)add(a, b);
  EXPECT_EQ(exchange_thread_flops(), 16u);
}

TEST(FlopsTest, ThreadedMatmulStillChargesCaller) {
  common::set_global_pool_threads(3);
  exchange_thread_flops();
  common::Rng rng(4);
  const Tensor a = Tensor::randn(32, 16, rng);
  const Tensor b = Tensor::randn(16, 8, rng);
  (void)matmul(a, b);
  EXPECT_EQ(exchange_thread_flops(), 2ULL * 32 * 16 * 8);
  common::set_global_pool_threads(1);
}

TEST(FlopsTest, ScopedCounterIsolatesASection) {
  exchange_thread_flops();
  count_flops(100);  // outer accumulation in flight
  {
    ScopedFlopsCounter section;
    EXPECT_EQ(thread_flops(), 0u);  // section starts clean
    count_flops(7);
    EXPECT_EQ(section.taken(), 7u);
  }
  // Outer counter restored with the section's flops propagated on top.
  EXPECT_EQ(thread_flops(), 107u);
  exchange_thread_flops();
}

TEST(FlopsTest, ScopedCountersNest) {
  exchange_thread_flops();
  count_flops(1);
  {
    ScopedFlopsCounter outer;
    count_flops(2);
    {
      ScopedFlopsCounter inner;
      count_flops(4);
      EXPECT_EQ(inner.taken(), 4u);
    }
    EXPECT_EQ(outer.taken(), 6u);  // inner section propagated outward
  }
  EXPECT_EQ(thread_flops(), 7u);
  exchange_thread_flops();
}

TEST(FlopsTest, CountersAreThreadLocal) {
  exchange_thread_flops();
  count_flops(10);
  std::uint64_t other_thread_count = 99;
  std::thread t([&] {
    count_flops(5);
    other_thread_count = thread_flops();
  });
  t.join();
  EXPECT_EQ(other_thread_count, 5u);
  EXPECT_EQ(thread_flops(), 10u);
  exchange_thread_flops();
}

}  // namespace
}  // namespace cellgan::tensor
