#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace cellgan::tensor {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t l = 0; l < a.cols(); ++l) acc += a.at(i, l) * b.at(l, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

void expect_near(const Tensor& a, const Tensor& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "at flat index " << i;
  }
}

TEST(OpsTest, MatmulSmallKnownValues) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

class MatmulShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapeSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  common::Rng rng(m * 100 + k * 10 + n);
  Tensor a = Tensor::randn(m, k, rng);
  Tensor b = Tensor::randn(k, n, rng);
  expect_near(matmul(a, b), naive_matmul(a, b), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapeSweep,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 5, 3},
                                           std::tuple{4, 4, 4}, std::tuple{7, 3, 9},
                                           std::tuple{16, 32, 8},
                                           std::tuple{33, 17, 29}));

TEST(OpsTest, MatmulThreadedMatchesSerial) {
  common::Rng rng(123);
  Tensor a = Tensor::randn(64, 32, rng);
  Tensor b = Tensor::randn(32, 48, rng);
  const Tensor serial = matmul(a, b);
  common::set_global_pool_threads(3);
  const Tensor threaded = matmul(a, b);
  common::set_global_pool_threads(1);
  expect_near(serial, threaded, 1e-5f);
}

TEST(OpsTest, ElementwiseThreadedIsBitIdenticalToSerial) {
  // Above the elementwise cutoff the maps fan out over the pool; chunked
  // execution must not change a single bit (each output element depends only
  // on its own inputs, so there is no summation-order slack to hide behind).
  common::Rng rng(321);
  Tensor a = Tensor::randn(200, 120, rng);  // 24000 elements > cutoff
  Tensor b = Tensor::randn(200, 120, rng);
  const Tensor sum_serial = add(a, b);
  const Tensor diff_serial = sub(a, b);
  const Tensor prod_serial = mul(a, b);
  const Tensor scaled_serial = scale(a, 0.37f);
  const Tensor tanh_serial = tanh_forward(a);
  const Tensor sig_serial = sigmoid_forward(a);
  const Tensor relu_serial = leaky_relu_forward(a, 0.2f);
  const Tensor dtanh_serial = tanh_backward(b, tanh_serial);
  const Tensor dsig_serial = sigmoid_backward(b, sig_serial);
  const Tensor drelu_serial = leaky_relu_backward(b, a, 0.2f);
  Tensor axpy_serial = b;
  axpy(0.11f, a, axpy_serial);

  common::set_global_pool_threads(3);
  const auto expect_same = [](const Tensor& threaded, const Tensor& serial) {
    ASSERT_EQ(threaded.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(threaded.data()[i], serial.data()[i]) << "element " << i;
    }
  };
  expect_same(add(a, b), sum_serial);
  expect_same(sub(a, b), diff_serial);
  expect_same(mul(a, b), prod_serial);
  expect_same(scale(a, 0.37f), scaled_serial);
  expect_same(tanh_forward(a), tanh_serial);
  expect_same(sigmoid_forward(a), sig_serial);
  expect_same(leaky_relu_forward(a, 0.2f), relu_serial);
  expect_same(tanh_backward(b, tanh_serial), dtanh_serial);
  expect_same(sigmoid_backward(b, sig_serial), dsig_serial);
  expect_same(leaky_relu_backward(b, a, 0.2f), drelu_serial);
  Tensor axpy_threaded = b;
  axpy(0.11f, a, axpy_threaded);
  expect_same(axpy_threaded, axpy_serial);
  common::set_global_pool_threads(1);
}

TEST(OpsTest, AddRowBiasThreadedIsBitIdenticalToSerial) {
  // Tall-skinny and short-wide shapes: both cross the element cutoff (the
  // gate is total elements, not rows) and both must chunk bit-identically.
  for (const auto& [rows, cols] : {std::pair<std::size_t, std::size_t>{20000, 4},
                                   std::pair<std::size_t, std::size_t>{64, 512}}) {
    common::Rng rng(654);
    Tensor a = Tensor::randn(rows, cols, rng);
    Tensor bias = Tensor::randn(1, cols, rng);
    Tensor serial = a;
    add_row_bias(serial, bias);
    common::set_global_pool_threads(3);
    Tensor threaded = a;
    add_row_bias(threaded, bias);
    common::set_global_pool_threads(1);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(threaded.data()[i], serial.data()[i])
          << rows << "x" << cols << " element " << i;
    }
  }
}

TEST(OpsTest, MatmulTnEqualsTransposedMatmul) {
  common::Rng rng(7);
  Tensor a = Tensor::randn(5, 3, rng);  // (k x m): treated as A^T
  Tensor b = Tensor::randn(5, 4, rng);
  Tensor at(3, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  expect_near(matmul_tn(a, b), naive_matmul(at, b), 1e-4f);
}

TEST(OpsTest, MatmulNtEqualsMatmulWithTransposedB) {
  common::Rng rng(9);
  Tensor a = Tensor::randn(4, 6, rng);
  Tensor b = Tensor::randn(5, 6, rng);  // (n x k): treated as B^T
  Tensor bt(6, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 6; ++j) bt.at(j, i) = b.at(i, j);
  }
  expect_near(matmul_nt(a, b), naive_matmul(a, bt), 1e-4f);
}

TEST(OpsTest, MatmulTnThreadedAndBlockedMatchesSerial) {
  // Big enough to cross both the parallel_for row threshold and the l-block
  // size, so the tiled path and the worker partitioning are exercised.
  common::Rng rng(11);
  Tensor a = Tensor::randn(100, 24, rng);  // (k x m)
  Tensor b = Tensor::randn(100, 18, rng);
  const Tensor serial = matmul_tn(a, b);
  common::set_global_pool_threads(3);
  const Tensor threaded = matmul_tn(a, b);
  common::set_global_pool_threads(1);
  expect_near(serial, threaded, 1e-5f);
  Tensor at(24, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 24; ++j) at.at(j, i) = a.at(i, j);
  }
  expect_near(serial, naive_matmul(at, b), 1e-3f);
}

TEST(OpsTest, MatmulNtThreadedAndTiledMatchesSerial) {
  common::Rng rng(13);
  Tensor a = Tensor::randn(40, 33, rng);
  Tensor b = Tensor::randn(27, 33, rng);  // n = 27 exercises the 4-wide tail
  const Tensor serial = matmul_nt(a, b);
  common::set_global_pool_threads(3);
  const Tensor threaded = matmul_nt(a, b);
  common::set_global_pool_threads(1);
  expect_near(serial, threaded, 1e-5f);
  Tensor bt(33, 27);
  for (std::size_t i = 0; i < 27; ++i) {
    for (std::size_t j = 0; j < 33; ++j) bt.at(j, i) = b.at(i, j);
  }
  expect_near(serial, naive_matmul(a, bt), 1e-3f);
}

TEST(OpsDeathTest, MatmulShapeMismatchAborts) {
  Tensor a(2, 3), b(2, 2);
  EXPECT_DEATH((void)matmul(a, b), "precondition");
}

TEST(OpsTest, ElementwiseAddSubMul) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {4, 5, 6});
  expect_near(add(a, b), Tensor(1, 3, {5, 7, 9}));
  expect_near(sub(a, b), Tensor(1, 3, {-3, -3, -3}));
  expect_near(mul(a, b), Tensor(1, 3, {4, 10, 18}));
}

TEST(OpsTest, ScaleMultipliesAll) {
  Tensor a(1, 3, {1, -2, 3});
  expect_near(scale(a, -2.0f), Tensor(1, 3, {-2, 4, -6}));
}

TEST(OpsTest, AxpyAccumulates) {
  Tensor x(1, 3, {1, 2, 3});
  Tensor y(1, 3, {10, 20, 30});
  axpy(0.5f, x, y);
  expect_near(y, Tensor(1, 3, {10.5f, 21.0f, 31.5f}));
}

TEST(OpsTest, AddRowBiasBroadcasts) {
  Tensor a(2, 3, {0, 0, 0, 1, 1, 1});
  Tensor bias(1, 3, {10, 20, 30});
  add_row_bias(a, bias);
  expect_near(a, Tensor(2, 3, {10, 20, 30, 11, 21, 31}));
}

TEST(OpsTest, ColSumSumsColumns) {
  Tensor a(3, 2, {1, 2, 3, 4, 5, 6});
  expect_near(col_sum(a), Tensor(1, 2, {9, 12}));
}

TEST(OpsTest, TanhForwardMatchesStd) {
  Tensor x(1, 4, {-2.0f, -0.5f, 0.0f, 1.5f});
  Tensor y = tanh_forward(x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(y.data()[i], std::tanh(x.data()[i]), 1e-6f);
  }
}

TEST(OpsTest, SigmoidForwardStableAtExtremes) {
  Tensor x(1, 4, {-100.0f, -1.0f, 1.0f, 100.0f});
  Tensor y = sigmoid_forward(x);
  EXPECT_NEAR(y.data()[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y.data()[3], 1.0f, 1e-6f);
  EXPECT_NEAR(y.data()[1], 1.0f / (1.0f + std::exp(1.0f)), 1e-6f);
  for (const float v : y.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(OpsTest, LeakyReluForward) {
  Tensor x(1, 3, {-2.0f, 0.0f, 3.0f});
  Tensor y = leaky_relu_forward(x, 0.1f);
  expect_near(y, Tensor(1, 3, {-0.2f, 0.0f, 3.0f}));
}

TEST(OpsTest, SumAndMean) {
  Tensor a(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(sum(a), 10.0f);
  EXPECT_FLOAT_EQ(mean(a), 2.5f);
}

TEST(OpsTest, BceWithLogitsMatchesManualComputation) {
  // loss = -[y log(sigma(z)) + (1-y) log(1 - sigma(z))]
  Tensor logits(2, 1, {0.5f, -1.0f});
  Tensor target(2, 1, {1.0f, 0.0f});
  auto [loss, grad] = bce_with_logits(logits, target);
  const double s0 = 1.0 / (1.0 + std::exp(-0.5));
  const double s1 = 1.0 / (1.0 + std::exp(1.0));
  const double expected = (-std::log(s0) - std::log(1.0 - s1)) / 2.0;
  EXPECT_NEAR(loss, expected, 1e-6);
  EXPECT_NEAR(grad.at(0, 0), (s0 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(grad.at(1, 0), s1 / 2.0, 1e-6);
}

TEST(OpsTest, BceWithLogitsStableForHugeLogits) {
  Tensor logits(2, 1, {1000.0f, -1000.0f});
  Tensor target(2, 1, {1.0f, 0.0f});
  auto [loss, grad] = bce_with_logits(logits, target);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-5f);
  for (const float g : grad.data()) EXPECT_TRUE(std::isfinite(g));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  common::Rng rng(21);
  Tensor logits = Tensor::randn(5, 10, rng, 3.0f);
  Tensor probs = softmax(logits);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    float total = 0.0f;
    for (const float p : probs.row_span(r)) {
      EXPECT_GE(p, 0.0f);
      total += p;
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxInvariantToShift) {
  Tensor a(1, 3, {1.0f, 2.0f, 3.0f});
  Tensor b(1, 3, {101.0f, 102.0f, 103.0f});
  expect_near(softmax(a), softmax(b), 1e-6f);
}

TEST(OpsTest, SoftmaxCrossEntropyKnownCase) {
  Tensor logits(1, 3, {0.0f, 0.0f, 0.0f});
  auto [loss, grad] = softmax_cross_entropy(logits, {1});
  EXPECT_NEAR(loss, std::log(3.0f), 1e-5f);
  EXPECT_NEAR(grad.at(0, 0), 1.0f / 3.0f, 1e-5f);
  EXPECT_NEAR(grad.at(0, 1), 1.0f / 3.0f - 1.0f, 1e-5f);
}

TEST(OpsTest, ArgmaxRows) {
  Tensor a(2, 3, {1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(a);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(OpsTest, ArgmaxTiePicksFirst) {
  Tensor a(1, 3, {4, 4, 4});
  EXPECT_EQ(argmax_rows(a)[0], 0u);
}

}  // namespace
}  // namespace cellgan::tensor
