// Finite-difference gradient checks for every activation backward pass and
// the two loss functions — the invariants the whole training stack rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace cellgan::tensor {
namespace {

/// Numerical dL/dx for a scalar-valued function of one tensor.
Tensor numeric_gradient(const std::function<double(const Tensor&)>& f, Tensor x,
                        float eps = 1e-3f) {
  Tensor grad(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float original = x.data()[i];
    x.data()[i] = original + eps;
    const double up = f(x);
    x.data()[i] = original - eps;
    const double down = f(x);
    x.data()[i] = original;
    grad.data()[i] = static_cast<float>((up - down) / (2.0 * eps));
  }
  return grad;
}

void expect_grad_near(const Tensor& analytic, const Tensor& numeric,
                      float tol = 2e-2f) {
  ASSERT_TRUE(analytic.same_shape(numeric));
  for (std::size_t i = 0; i < analytic.size(); ++i) {
    ASSERT_NEAR(analytic.data()[i], numeric.data()[i], tol)
        << "at flat index " << i;
  }
}

TEST(GradCheckTest, TanhBackward) {
  common::Rng rng(1);
  const Tensor x = Tensor::randn(3, 4, rng);
  // L = sum(tanh(x)); dL/dy = ones.
  const Tensor y = tanh_forward(x);
  const Tensor analytic = tanh_backward(Tensor::full(3, 4, 1.0f), y);
  const Tensor numeric = numeric_gradient(
      [](const Tensor& t) { return static_cast<double>(sum(tanh_forward(t))); }, x);
  expect_grad_near(analytic, numeric);
}

TEST(GradCheckTest, SigmoidBackward) {
  common::Rng rng(2);
  const Tensor x = Tensor::randn(3, 4, rng);
  const Tensor y = sigmoid_forward(x);
  const Tensor analytic = sigmoid_backward(Tensor::full(3, 4, 1.0f), y);
  const Tensor numeric = numeric_gradient(
      [](const Tensor& t) { return static_cast<double>(sum(sigmoid_forward(t))); },
      x);
  expect_grad_near(analytic, numeric);
}

TEST(GradCheckTest, LeakyReluBackward) {
  common::Rng rng(3);
  // Keep values away from the kink at zero for a clean finite difference.
  Tensor x = Tensor::randn(3, 4, rng);
  for (auto& v : x.data()) {
    if (std::abs(v) < 0.05f) v = 0.2f;
  }
  const Tensor analytic =
      leaky_relu_backward(Tensor::full(3, 4, 1.0f), x, 0.2f);
  const Tensor numeric = numeric_gradient(
      [](const Tensor& t) {
        return static_cast<double>(sum(leaky_relu_forward(t, 0.2f)));
      },
      x);
  expect_grad_near(analytic, numeric);
}

TEST(GradCheckTest, BceWithLogitsGradient) {
  common::Rng rng(4);
  const Tensor logits = Tensor::randn(4, 2, rng);
  Tensor target(4, 2);
  for (std::size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = (i % 2 == 0) ? 1.0f : 0.0f;
  }
  auto [loss, analytic] = bce_with_logits(logits, target);
  (void)loss;
  const Tensor numeric = numeric_gradient(
      [&target](const Tensor& z) {
        return bce_with_logits(z, target).first;
      },
      logits);
  expect_grad_near(analytic, numeric, 1e-2f);
}

TEST(GradCheckTest, SoftmaxCrossEntropyGradient) {
  common::Rng rng(5);
  const Tensor logits = Tensor::randn(4, 5, rng);
  const std::vector<std::uint32_t> labels{0, 2, 4, 1};
  auto [loss, analytic] = softmax_cross_entropy(logits, labels);
  (void)loss;
  const Tensor numeric = numeric_gradient(
      [&labels](const Tensor& z) {
        return softmax_cross_entropy(z, labels).first;
      },
      logits);
  expect_grad_near(analytic, numeric, 1e-2f);
}

}  // namespace
}  // namespace cellgan::tensor
