// Pins the SIMD microkernels against the scalar reference (the seam in
// tensor/kernels.hpp):
//
//  * the elementwise family must be BIT-IDENTICAL across kinds — both kinds
//    evaluate the same per-element expression, so any drift is a bug;
//  * the GEMM family may differ by accumulation order (packed panels + FMA),
//    but only within the documented bound asserted here: for every output
//    element, |kind - reference| <= 16*eps * sum_l |a||b| + 1e-6, with the
//    double-precision dot product as reference. The cross-kind gap obeys
//    twice that bound;
//  * all three GEMM kernels OVERWRITE their output rows (the unified
//    initialization contract) — poisoned output memory must not leak in;
//  * results are independent of the thread-pool fan-out for a fixed kind.
//
// Shapes sweep odd/prime/tail-heavy sizes so partial kMR x kNR tiles, panel
// remainders and sub-vector widths all get exercised, and run under the
// tier1 label so the ASan/UBSan CI job covers the packing scratch buffers.
#include "tensor/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace cellgan::tensor {
namespace {

/// Scoped kernel selection: restores the surrounding kind on exit so test
/// order never leaks a selection.
class KindGuard {
 public:
  explicit KindGuard(KernelKind kind) : previous_(active_kernel_kind()) {
    set_kernel_kind(kind);
  }
  ~KindGuard() { set_kernel_kind(previous_); }

 private:
  KernelKind previous_;
};

struct GemmShape {
  std::size_t m, k, n;
};

// Odd, prime and tail-heavy shapes around the 6x16 microkernel tile and the
// 256-deep k panel, plus the paper's discriminator first layer.
const GemmShape kShapes[] = {
    {1, 1, 1},   {2, 3, 5},     {5, 7, 3},    {6, 16, 16},  {7, 17, 19},
    {17, 13, 11}, {31, 64, 33},  {33, 65, 17}, {3, 257, 65}, {129, 31, 63},
    {13, 300, 47}, {100, 784, 256},
};

Tensor random_tensor(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  common::Rng rng(seed);
  return Tensor::randn(rows, cols, rng);
}

/// Asserts `result` element-wise against the double-precision reference of
/// op(A')B' (A'[i,l], B'[l,j] given through accessors), with the documented
/// accumulation bound.
template <typename AccessA, typename AccessB>
void expect_within_gemm_bound(const Tensor& result, std::size_t m,
                              std::size_t k, std::size_t n, AccessA at_a,
                              AccessB at_b, const char* label) {
  constexpr float kEps = std::numeric_limits<float>::epsilon();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double ref = 0.0;
      double scale = 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        const double a = at_a(i, l);
        const double b = at_b(l, j);
        ref += a * b;
        scale += std::abs(a) * std::abs(b);
      }
      const double bound = 16.0 * kEps * scale + 1e-6;
      ASSERT_NEAR(result.at(i, j), ref, bound)
          << label << " element (" << i << "," << j << ") of " << m << "x" << k
          << "x" << n;
    }
  }
}

TEST(KernelParity, MatmulWithinBoundBothKinds) {
  for (const auto& shape : kShapes) {
    const Tensor a = random_tensor(shape.m, shape.k, 11 + shape.m);
    const Tensor b = random_tensor(shape.k, shape.n, 23 + shape.n);
    const auto at_a = [&](std::size_t i, std::size_t l) { return a.at(i, l); };
    const auto at_b = [&](std::size_t l, std::size_t j) { return b.at(l, j); };
    Tensor scalar_c(0, 0), simd_c(0, 0);
    {
      KindGuard guard(KernelKind::kScalar);
      scalar_c = matmul(a, b);
    }
    {
      KindGuard guard(KernelKind::kSimd);
      simd_c = matmul(a, b);
    }
    expect_within_gemm_bound(scalar_c, shape.m, shape.k, shape.n, at_a, at_b,
                             "scalar matmul");
    expect_within_gemm_bound(simd_c, shape.m, shape.k, shape.n, at_a, at_b,
                             "simd matmul");
  }
}

TEST(KernelParity, MatmulTnWithinBoundBothKinds) {
  for (const auto& shape : kShapes) {
    // A stored k x m, logical A^T.
    const Tensor a = random_tensor(shape.k, shape.m, 31 + shape.k);
    const Tensor b = random_tensor(shape.k, shape.n, 41 + shape.n);
    const auto at_a = [&](std::size_t i, std::size_t l) { return a.at(l, i); };
    const auto at_b = [&](std::size_t l, std::size_t j) { return b.at(l, j); };
    Tensor scalar_c(0, 0), simd_c(0, 0);
    {
      KindGuard guard(KernelKind::kScalar);
      scalar_c = matmul_tn(a, b);
    }
    {
      KindGuard guard(KernelKind::kSimd);
      simd_c = matmul_tn(a, b);
    }
    expect_within_gemm_bound(scalar_c, shape.m, shape.k, shape.n, at_a, at_b,
                             "scalar matmul_tn");
    expect_within_gemm_bound(simd_c, shape.m, shape.k, shape.n, at_a, at_b,
                             "simd matmul_tn");
  }
}

TEST(KernelParity, MatmulNtWithinBoundBothKinds) {
  for (const auto& shape : kShapes) {
    const Tensor a = random_tensor(shape.m, shape.k, 53 + shape.m);
    // B stored n x k, logical B^T.
    const Tensor b = random_tensor(shape.n, shape.k, 61 + shape.k);
    const auto at_a = [&](std::size_t i, std::size_t l) { return a.at(i, l); };
    const auto at_b = [&](std::size_t l, std::size_t j) { return b.at(j, l); };
    Tensor scalar_c(0, 0), simd_c(0, 0);
    {
      KindGuard guard(KernelKind::kScalar);
      scalar_c = matmul_nt(a, b);
    }
    {
      KindGuard guard(KernelKind::kSimd);
      simd_c = matmul_nt(a, b);
    }
    expect_within_gemm_bound(scalar_c, shape.m, shape.k, shape.n, at_a, at_b,
                             "scalar matmul_nt");
    expect_within_gemm_bound(simd_c, shape.m, shape.k, shape.n, at_a, at_b,
                             "simd matmul_nt");
  }
}

TEST(KernelParity, GemmCrossKindDriftBounded) {
  // The scalar and SIMD results must sit within twice the per-kind bound of
  // each other (both are within it of the double reference).
  constexpr float kEps = std::numeric_limits<float>::epsilon();
  for (const auto& shape : kShapes) {
    const Tensor a = random_tensor(shape.m, shape.k, 71 + shape.m);
    const Tensor b = random_tensor(shape.k, shape.n, 83 + shape.n);
    Tensor scalar_c(0, 0), simd_c(0, 0);
    {
      KindGuard guard(KernelKind::kScalar);
      scalar_c = matmul(a, b);
    }
    {
      KindGuard guard(KernelKind::kSimd);
      simd_c = matmul(a, b);
    }
    for (std::size_t i = 0; i < shape.m; ++i) {
      for (std::size_t j = 0; j < shape.n; ++j) {
        double scale = 0.0;
        for (std::size_t l = 0; l < shape.k; ++l) {
          scale += std::abs(static_cast<double>(a.at(i, l))) *
                   std::abs(static_cast<double>(b.at(l, j)));
        }
        ASSERT_NEAR(scalar_c.at(i, j), simd_c.at(i, j),
                    2.0 * (16.0 * kEps * scale + 1e-6));
      }
    }
  }
}

TEST(KernelParity, StridedViewOperandsMatchFullTensors) {
  // slice_rows / reshaped produce the operands layers actually feed the
  // kernels; a slice's GEMM must equal the matching rows computed whole.
  const Tensor a = random_tensor(40, 37, 97);
  const Tensor b = random_tensor(37, 29, 101);
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kSimd}) {
    KindGuard guard(kind);
    const Tensor whole = matmul(a, b);
    const Tensor part = matmul(a.slice_rows(7, 23), b);
    for (std::size_t i = 0; i < part.rows(); ++i) {
      for (std::size_t j = 0; j < part.cols(); ++j) {
        ASSERT_EQ(part.at(i, j), whole.at(i + 7, j)) << to_string(kind);
      }
    }
    const Tensor reshaped = a.reshaped(37, 40);
    const Tensor tn_a = matmul_tn(reshaped, random_tensor(37, 5, 103));
    ASSERT_EQ(tn_a.rows(), 40u);
    ASSERT_EQ(tn_a.cols(), 5u);
  }
}

TEST(KernelParity, ElementwiseFamilyBitIdenticalAcrossKinds) {
  // Odd total sizes, incl. one above the pool fan-out cutoff (1 << 14).
  const struct {
    std::size_t rows, cols;
  } shapes[] = {{1, 1}, {3, 7}, {13, 17}, {100, 257}, {130, 131}};
  for (const auto& shape : shapes) {
    const Tensor a = random_tensor(shape.rows, shape.cols, 7);
    const Tensor b = random_tensor(shape.rows, shape.cols, 9);
    const Tensor ones = Tensor::full(shape.rows, shape.cols, 1.0f);
    const auto run_all = [&](KernelKind kind) {
      KindGuard guard(kind);
      std::vector<Tensor> results;
      results.push_back(add(a, b));
      results.push_back(sub(a, b));
      results.push_back(mul(a, b));
      results.push_back(scale(a, 0.37f));
      Tensor y = a;  // axpy target
      axpy(0.73f, b, y);
      results.push_back(std::move(y));
      Tensor biased = a;
      common::Rng rng(13);
      add_row_bias(biased, Tensor::randn(1, shape.cols, rng));
      results.push_back(std::move(biased));
      results.push_back(tanh_forward(a));
      results.push_back(tanh_backward(ones, tanh_forward(a)));
      results.push_back(sigmoid_forward(a));
      results.push_back(sigmoid_backward(ones, sigmoid_forward(a)));
      results.push_back(leaky_relu_forward(a, 0.2f));
      results.push_back(leaky_relu_backward(ones, a, 0.2f));
      return results;
    };
    const auto scalar_results = run_all(KernelKind::kScalar);
    const auto simd_results = run_all(KernelKind::kSimd);
    ASSERT_EQ(scalar_results.size(), simd_results.size());
    for (std::size_t op = 0; op < scalar_results.size(); ++op) {
      const auto& s = scalar_results[op];
      const auto& v = simd_results[op];
      ASSERT_TRUE(s.same_shape(v));
      ASSERT_EQ(0, std::memcmp(s.data().data(), v.data().data(),
                               s.size() * sizeof(float)))
          << "elementwise op index " << op << " at " << shape.rows << "x"
          << shape.cols;
    }
  }
}

TEST(KernelParity, GemmKernelsOverwritePoisonedOutput) {
  // The unified output contract: kernels OVERWRITE rows [row_begin, row_end)
  // — callers never pre-zero, so poisoned memory must vanish entirely.
  const std::size_t m = 9, k = 14, n = 21;
  const Tensor a = random_tensor(m, k, 7);
  const Tensor b = random_tensor(k, n, 9);
  const Tensor a_t = random_tensor(k, m, 11);
  const Tensor b_t = random_tensor(n, k, 13);
  const float poison = std::numeric_limits<float>::quiet_NaN();
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kSimd}) {
    std::vector<float> c(m * n, poison);
    kernels::gemm(kind, a.data().data(), b.data().data(), c.data(), 0, m, k, n);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << to_string(kind);

    std::fill(c.begin(), c.end(), poison);
    kernels::gemm_tn(kind, a_t.data().data(), b.data().data(), c.data(), 0, m,
                     k, m, n);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << to_string(kind);

    std::fill(c.begin(), c.end(), poison);
    kernels::gemm_nt(kind, a.data().data(), b_t.data().data(), c.data(), 0, m,
                     k, n);
    for (const float v : c) ASSERT_FALSE(std::isnan(v)) << to_string(kind);

    // k == 0 must still overwrite (with zeros), not skip the rows.
    std::fill(c.begin(), c.end(), poison);
    kernels::gemm(kind, a.data().data(), b.data().data(), c.data(), 0, m, 0, n);
    for (const float v : c) ASSERT_EQ(v, 0.0f) << to_string(kind);
  }
}

TEST(KernelParity, RowRangeKernelMatchesFullRun) {
  // Row-partitioned calls (the thread-pool fan-out) must reproduce the full
  // run bit for bit for a fixed kind — the accumulation order of an output
  // element never depends on the partition.
  const std::size_t m = 23, k = 65, n = 47;
  const Tensor a = random_tensor(m, k, 17);
  const Tensor b = random_tensor(k, n, 19);
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kSimd}) {
    std::vector<float> whole(m * n, 0.0f);
    kernels::gemm(kind, a.data().data(), b.data().data(), whole.data(), 0, m,
                  k, n);
    std::vector<float> split(m * n, 0.0f);
    kernels::gemm(kind, a.data().data(), b.data().data(), split.data(), 0, 9,
                  k, n);
    kernels::gemm(kind, a.data().data(), b.data().data(), split.data(), 9, 10,
                  k, n);
    kernels::gemm(kind, a.data().data(), b.data().data(), split.data(), 10, m,
                  k, n);
    ASSERT_EQ(0,
              std::memcmp(whole.data(), split.data(), m * n * sizeof(float)))
        << to_string(kind);
  }
}

TEST(KernelParity, ThreadedMatmulBitIdenticalToSerialPerKind) {
  const Tensor a = random_tensor(64, 129, 29);
  const Tensor b = random_tensor(129, 65, 31);
  for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kSimd}) {
    KindGuard guard(kind);
    common::set_global_pool_threads(1);
    const Tensor serial = matmul(a, b);
    common::set_global_pool_threads(4);
    const Tensor threaded = matmul(a, b);
    common::set_global_pool_threads(1);
    ASSERT_EQ(0, std::memcmp(serial.data().data(), threaded.data().data(),
                             serial.size() * sizeof(float)))
        << to_string(kind);
  }
}

TEST(KernelSelection, NameRoundTripAndSetGet) {
  EXPECT_STREQ("scalar", to_string(KernelKind::kScalar));
  EXPECT_STREQ("simd", to_string(KernelKind::kSimd));
  EXPECT_EQ(KernelKind::kScalar, kernel_kind_from_string("scalar"));
  EXPECT_EQ(KernelKind::kSimd, kernel_kind_from_string("simd"));
  EXPECT_FALSE(kernel_kind_from_string("avx512").has_value());
  EXPECT_FALSE(kernel_kind_from_string("").has_value());

  const KernelKind before = active_kernel_kind();
  set_kernel_kind(KernelKind::kScalar);
  EXPECT_EQ(KernelKind::kScalar, active_kernel_kind());
  set_kernel_kind(KernelKind::kSimd);
  EXPECT_EQ(KernelKind::kSimd, active_kernel_kind());
  set_kernel_kind(before);

  // Whatever the hardware, the instruction-set name is one of the known ones.
  const std::string isa = simd_instruction_set();
  EXPECT_TRUE(isa == "avx2+fma" || isa == "neon" || isa == "portable") << isa;
}

}  // namespace
}  // namespace cellgan::tensor
