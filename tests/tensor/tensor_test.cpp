#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace cellgan::tensor {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_EQ(t.cols(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ConstructedZeroInitialized) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  for (const float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, AtIsRowMajor) {
  Tensor t(2, 3, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(TensorTest, AtIsWritable) {
  Tensor t(2, 2);
  t.at(1, 1) = 7.0f;
  EXPECT_EQ(t.data()[3], 7.0f);
}

TEST(TensorDeathTest, OutOfBoundsAtAborts) {
  Tensor t(2, 2);
  EXPECT_DEATH((void)t.at(2, 0), "precondition");
  EXPECT_DEATH((void)t.at(0, 2), "precondition");
}

TEST(TensorDeathTest, MismatchedDataSizeAborts) {
  EXPECT_DEATH(Tensor(2, 2, {1.0f}), "precondition");
}

TEST(TensorTest, RowFactoryBuildsRowVector) {
  Tensor t = Tensor::row({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.at(0, 1), 2.0f);
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::full(2, 2, -1.5f);
  for (const float v : t.data()) EXPECT_EQ(v, -1.5f);
}

TEST(TensorTest, RandnHasApproxMoments) {
  common::Rng rng(3);
  Tensor t = Tensor::randn(100, 100, rng, 2.0f);
  double sum = 0.0, sum_sq = 0.0;
  for (const float v : t.data()) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / t.size();
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / t.size() - mean * mean, 4.0, 0.15);
}

TEST(TensorTest, RandUniformRespectsRange) {
  common::Rng rng(5);
  Tensor t = Tensor::rand_uniform(10, 10, rng, -0.25f, 0.75f);
  for (const float v : t.data()) {
    EXPECT_GE(v, -0.25f);
    EXPECT_LT(v, 0.75f);
  }
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(2, 6, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  Tensor r = t.reshaped(4, 3);
  EXPECT_EQ(r.rows(), 4u);
  EXPECT_EQ(r.at(1, 0), 3.0f);
  EXPECT_EQ(r.at(3, 2), 11.0f);
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor t(2, 3);
  EXPECT_DEATH((void)t.reshaped(2, 4), "precondition");
}

TEST(TensorTest, SliceRowsCopies) {
  Tensor t(3, 2, {0, 1, 2, 3, 4, 5});
  Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.at(0, 0), 2.0f);
  EXPECT_EQ(s.at(1, 1), 5.0f);
  s.at(0, 0) = 99.0f;
  EXPECT_EQ(t.at(1, 0), 2.0f);  // original untouched
}

TEST(TensorTest, EmptySliceAllowed) {
  Tensor t(3, 2);
  Tensor s = t.slice_rows(1, 1);
  EXPECT_EQ(s.rows(), 0u);
  EXPECT_EQ(s.cols(), 2u);
}

TEST(TensorTest, RowSpanViewsUnderlyingData) {
  Tensor t(2, 3, {0, 1, 2, 3, 4, 5});
  auto row = t.row_span(1);
  ASSERT_EQ(row.size(), 3u);
  row[0] = 42.0f;
  EXPECT_EQ(t.at(1, 0), 42.0f);
}

TEST(TensorTest, SameShapeComparesDims) {
  Tensor a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(TensorTest, FillOverwrites) {
  Tensor t(2, 2, {1, 2, 3, 4});
  t.fill(0.5f);
  for (const float v : t.data()) EXPECT_EQ(v, 0.5f);
}

}  // namespace
}  // namespace cellgan::tensor
