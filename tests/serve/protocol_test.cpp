// serve/protocol: codec round-trips and the framed-socket send/recv pair
// (over a socketpair — no server needed), including the failure surface:
// clean EOF vs garbage vs foreign-context frames.
#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "minimpi/transport.hpp"

namespace cellgan::serve {
namespace {

TEST(ServeProtocol, SampleRequestRoundTrips) {
  SampleRequest request;
  request.request_id = 77;
  request.seed = 0xdeadbeefULL;
  request.count = 64;
  EXPECT_EQ(SampleRequest::deserialize(request.serialize()), request);
}

TEST(ServeProtocol, SampleResponseRoundTrips) {
  SampleResponse response;
  response.request_id = 3;
  response.status = static_cast<std::uint32_t>(SampleStatus::kOk);
  response.rows = 2;
  response.cols = 3;
  response.samples = {1.0f, -2.5f, 0.0f, 4.0f, 5.0f, -6.0f};
  response.batch_requests = 4;
  response.queue_us = 120.5;
  response.forward_us = 800.25;
  EXPECT_EQ(SampleResponse::deserialize(response.serialize()), response);

  SampleResponse failure;
  failure.request_id = 4;
  failure.status = static_cast<std::uint32_t>(SampleStatus::kBadRequest);
  failure.error = "count must be in [1, 4096]";
  EXPECT_EQ(SampleResponse::deserialize(failure.serialize()), failure);
  EXPECT_FALSE(failure.ok());
}

TEST(ServeProtocol, StatsResponseRoundTrips) {
  StatsResponse stats;
  stats.requests = 100;
  stats.samples = 1600;
  stats.batches = 25;
  stats.cache_hits = 99;
  stats.cache_misses = 1;
  stats.cache_evictions = 0;
  stats.rejected = 2;
  stats.uptime_s = 12.5;
  stats.total_queue_us = 1e6;
  stats.total_forward_us = 2e6;
  EXPECT_EQ(StatsResponse::deserialize(stats.serialize()), stats);
}

class SocketPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    for (const int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
  }
  void close_writer() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }

  int fds_[2] = {-1, -1};
};

TEST_F(SocketPairTest, SendRecvRoundTripsMessages) {
  SampleRequest request;
  request.request_id = 9;
  request.seed = 1234;
  request.count = 8;
  ASSERT_TRUE(send_message(fds_[0], MsgType::kSampleRequest,
                           request.serialize()));
  ASSERT_TRUE(send_message(fds_[0], MsgType::kStatsRequest, {}));

  Message msg;
  ASSERT_TRUE(recv_message(fds_[1], &msg));
  EXPECT_EQ(msg.type, MsgType::kSampleRequest);
  EXPECT_EQ(SampleRequest::deserialize(msg.payload), request);

  ASSERT_TRUE(recv_message(fds_[1], &msg));
  EXPECT_EQ(msg.type, MsgType::kStatsRequest);
  EXPECT_TRUE(msg.payload.empty());
}

TEST_F(SocketPairTest, CleanEofReturnsFalse) {
  close_writer();
  Message msg;
  EXPECT_FALSE(recv_message(fds_[1], &msg));
}

TEST_F(SocketPairTest, GarbageThrowsProtocolError) {
  const char junk[] = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n padding padding";
  ASSERT_GT(sizeof(junk), minimpi::kFrameHeaderBytes);
  ASSERT_EQ(::write(fds_[0], junk, sizeof(junk)),
            static_cast<ssize_t>(sizeof(junk)));
  Message msg;
  EXPECT_THROW(recv_message(fds_[1], &msg), ProtocolError);
}

TEST_F(SocketPairTest, TruncatedHeaderThrowsProtocolError) {
  const std::uint8_t partial[3] = {0x43, 0x47, 0x46};  // frame magic prefix
  ASSERT_EQ(::write(fds_[0], partial, sizeof(partial)),
            static_cast<ssize_t>(sizeof(partial)));
  close_writer();
  Message msg;
  EXPECT_THROW(recv_message(fds_[1], &msg), ProtocolError);
}

TEST_F(SocketPairTest, ForeignContextKeyThrowsProtocolError) {
  // A syntactically valid minimpi frame that is not serving traffic.
  minimpi::Frame frame;
  frame.context_key = 0x1234;  // not kServeContextKey
  frame.tag = static_cast<std::int32_t>(MsgType::kSampleRequest);
  frame.payload = {1, 2, 3};
  const auto wire = minimpi::encode_frame(frame);
  ASSERT_EQ(::write(fds_[0], wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
  Message msg;
  EXPECT_THROW(recv_message(fds_[1], &msg), ProtocolError);
}

}  // namespace
}  // namespace cellgan::serve
