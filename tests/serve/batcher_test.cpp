// serve/batcher: micro-batched outcomes must be bit-identical to solo
// CheckpointMixture::sample draws whatever the batch composition, occupancy
// must be reported, and drain must complete every accepted job.
#include "serve/batcher.hpp"

#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serve_testsupport.hpp"

namespace cellgan::serve {
namespace {

using serve_test::bit_identical;
using serve_test::synthetic_checkpoint;

std::shared_ptr<core::CheckpointMixture> make_model(std::uint64_t seed = 1) {
  return std::make_shared<core::CheckpointMixture>(synthetic_checkpoint(seed));
}

/// Enqueue (seed, count) jobs and wait for all outcomes, order-preserving.
std::vector<SampleOutcome> run_jobs(
    Batcher& batcher, const std::shared_ptr<core::CheckpointMixture>& model,
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& jobs) {
  std::vector<std::promise<SampleOutcome>> promises(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SampleJob job;
    job.id = i + 1;
    job.seed = jobs[i].first;
    job.count = jobs[i].second;
    job.model = model;
    job.done = [&promises, i](SampleOutcome outcome) {
      promises[i].set_value(std::move(outcome));
    };
    EXPECT_TRUE(batcher.enqueue(std::move(job)));
  }
  std::vector<SampleOutcome> outcomes;
  outcomes.reserve(jobs.size());
  for (auto& promise : promises) {
    outcomes.push_back(promise.get_future().get());
  }
  return outcomes;
}

TEST(Batcher, BatchedOutcomesBitIdenticalToSoloSamples) {
  auto model = make_model();
  // A long delay bound so all jobs land in one batch deterministically.
  Batcher batcher(BatchPolicy{8, 200'000});
  const std::vector<std::pair<std::uint64_t, std::uint32_t>> jobs = {
      {11, 5}, {22, 3}, {33, 8}, {44, 1}};
  const auto outcomes = run_jobs(batcher, model, jobs);
  batcher.drain_and_stop();

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const tensor::Tensor solo = model->sample(jobs[i].second, jobs[i].first);
    EXPECT_TRUE(bit_identical(outcomes[i].samples, solo))
        << "job " << i << " diverged from its solo draw";
  }
}

TEST(Batcher, ReportsBatchOccupancy) {
  auto model = make_model();
  Batcher batcher(BatchPolicy{8, 200'000});
  const auto outcomes =
      run_jobs(batcher, model, {{1, 2}, {2, 2}, {3, 2}});
  batcher.drain_and_stop();

  // All three fit one batch (policy allows 8, delay is huge).
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.batch_requests, 3u);
    EXPECT_EQ(outcome.batch_samples, 6u);
    EXPECT_GE(outcome.forward_us, 0.0);
    EXPECT_GE(outcome.total_us, outcome.queue_us);
  }
  EXPECT_EQ(batcher.batches_executed(), 1u);
}

TEST(Batcher, MaxBatchOneEqualsBatchedResults) {
  auto model = make_model();
  const std::vector<std::pair<std::uint64_t, std::uint32_t>> jobs = {
      {7, 4}, {8, 6}, {9, 2}};

  Batcher solo_batcher(BatchPolicy{1, 0});
  const auto solo = run_jobs(solo_batcher, model, jobs);
  solo_batcher.drain_and_stop();

  Batcher grouped_batcher(BatchPolicy{8, 200'000});
  const auto grouped = run_jobs(grouped_batcher, model, jobs);
  grouped_batcher.drain_and_stop();

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(solo[i].batch_requests, 1u);
    EXPECT_TRUE(bit_identical(solo[i].samples, grouped[i].samples))
        << "batch-size dependence at job " << i;
  }
}

TEST(Batcher, DistinctModelsNeverShareABatch) {
  auto model_a = make_model(1);
  auto model_b = make_model(2);
  Batcher batcher(BatchPolicy{8, 200'000});

  std::vector<std::promise<SampleOutcome>> promises(4);
  const std::shared_ptr<core::CheckpointMixture> models[4] = {
      model_a, model_a, model_b, model_a};
  for (std::size_t i = 0; i < 4; ++i) {
    SampleJob job;
    job.id = i + 1;
    job.seed = 100 + i;
    job.count = 2;
    job.model = models[i];
    job.done = [&promises, i](SampleOutcome outcome) {
      promises[i].set_value(std::move(outcome));
    };
    ASSERT_TRUE(batcher.enqueue(std::move(job)));
  }
  std::vector<SampleOutcome> outcomes;
  for (auto& promise : promises) outcomes.push_back(promise.get_future().get());
  batcher.drain_and_stop();

  // Whatever the batch boundaries fell out as, each job must still match its
  // own model's solo draw — a cross-model batch would break this.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(bit_identical(outcomes[i].samples,
                              models[i]->sample(2, 100 + i)));
  }
  EXPECT_GE(batcher.batches_executed(), 2u);  // model boundary forced a split
}

TEST(Batcher, EnqueueAfterDrainReturnsFalse) {
  auto model = make_model();
  Batcher batcher(BatchPolicy{4, 1000});
  batcher.drain_and_stop();

  SampleJob job;
  job.id = 1;
  job.seed = 5;
  job.count = 2;
  job.model = model;
  job.done = [](SampleOutcome) { FAIL() << "job ran after drain"; };
  EXPECT_FALSE(batcher.enqueue(std::move(job)));
}

TEST(Batcher, DrainCompletesQueuedJobs) {
  auto model = make_model();
  // Huge delay: without the drain, the single queued job would sit waiting
  // for company. Drain must flush it immediately.
  auto batcher = std::make_unique<Batcher>(BatchPolicy{8, 10'000'000});
  std::promise<SampleOutcome> promise;
  SampleJob job;
  job.id = 1;
  job.seed = 3;
  job.count = 4;
  job.model = model;
  job.done = [&promise](SampleOutcome outcome) {
    promise.set_value(std::move(outcome));
  };
  ASSERT_TRUE(batcher->enqueue(std::move(job)));
  batcher->drain_and_stop();

  auto future = promise.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(bit_identical(future.get().samples, model->sample(4, 3)));
}

TEST(Batcher, PublishesObserverRecords) {
  core::EventBus bus;
  struct Recorder final : core::TrainObserver {
    std::vector<core::ServeRequestRecord> requests;
    std::vector<core::ServeBatchRecord> batches;
    void on_serve_request(const core::ServeRequestRecord& r) override {
      requests.push_back(r);
    }
    void on_serve_batch(const core::ServeBatchRecord& r) override {
      batches.push_back(r);
    }
  } recorder;
  bus.subscribe(&recorder);

  ServeObserver observer(&bus);
  auto model = make_model();
  {
    Batcher batcher(BatchPolicy{8, 200'000}, &observer);
    run_jobs(batcher, model, {{1, 3}, {2, 5}});
    batcher.drain_and_stop();
  }

  ASSERT_EQ(recorder.batches.size(), 1u);
  EXPECT_EQ(recorder.batches[0].requests, 2u);
  EXPECT_EQ(recorder.batches[0].samples, 8u);
  ASSERT_EQ(recorder.requests.size(), 2u);
  EXPECT_EQ(recorder.requests[0].count, 3u);
  EXPECT_EQ(recorder.requests[1].count, 5u);
  EXPECT_EQ(observer.stats().requests, 2u);
  EXPECT_EQ(observer.stats().samples, 8u);
  EXPECT_EQ(observer.stats().batches, 1u);
}

}  // namespace
}  // namespace cellgan::serve
