// serve/model_cache: warm-hit identity, mtime-invalidation reload, LRU
// eviction at capacity, and the error surface for missing/corrupt files.
#include "serve/model_cache.hpp"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "serve/serve_testsupport.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::serve {
namespace {

using serve_test::synthetic_checkpoint;

std::string write_checkpoint(const std::filesystem::path& dir,
                             const std::string& name, std::uint64_t seed) {
  const std::string path = (dir / name).string();
  EXPECT_TRUE(core::save_checkpoint(path, synthetic_checkpoint(seed)));
  return path;
}

TEST(ModelCache, MissThenHitReturnsSameModelInstance) {
  testsupport::TempDir dir("model_cache");
  const auto path = write_checkpoint(dir.path(), "a.ckpt", 1);

  ModelCache cache(2);
  const auto first = cache.get(path);
  ASSERT_NE(first.model, nullptr) << first.error;
  EXPECT_FALSE(first.hit);

  const auto second = cache.get(path);
  ASSERT_NE(second.model, nullptr);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.model.get(), second.model.get());  // warm = same instance

  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ModelCache, MtimeChangeForcesReload) {
  testsupport::TempDir dir("model_cache");
  const auto path = write_checkpoint(dir.path(), "a.ckpt", 1);

  ModelCache cache(2);
  const auto before = cache.get(path);
  ASSERT_NE(before.model, nullptr);

  // Rewrite the file with different parameters and push the mtime forward
  // (filesystem clocks can be coarse; an explicit bump removes the race).
  ASSERT_TRUE(core::save_checkpoint(path, synthetic_checkpoint(2)));
  std::filesystem::last_write_time(
      path, std::filesystem::last_write_time(path) + std::chrono::seconds(2));

  const auto after = cache.get(path);
  ASSERT_NE(after.model, nullptr);
  EXPECT_FALSE(after.hit);  // stale entry dropped, fresh load
  EXPECT_NE(before.model.get(), after.model.get());
  EXPECT_EQ(cache.misses(), 2u);

  // Samples differ because the parameters differ — the reload was real.
  EXPECT_FALSE(serve_test::bit_identical(before.model->sample(4, 9),
                                         after.model->sample(4, 9)));
}

TEST(ModelCache, LruEvictsLeastRecentlyUsedAtCapacity) {
  testsupport::TempDir dir("model_cache");
  const auto a = write_checkpoint(dir.path(), "a.ckpt", 1);
  const auto b = write_checkpoint(dir.path(), "b.ckpt", 2);
  const auto c = write_checkpoint(dir.path(), "c.ckpt", 3);

  ModelCache cache(2);
  ASSERT_NE(cache.get(a).model, nullptr);
  ASSERT_NE(cache.get(b).model, nullptr);
  EXPECT_TRUE(cache.get(a).hit);  // touch a; b becomes LRU

  ASSERT_NE(cache.get(c).model, nullptr);  // evicts b
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  EXPECT_TRUE(cache.get(a).hit);
  EXPECT_FALSE(cache.get(b).hit);  // b was evicted: miss again
}

TEST(ModelCache, MissingFileReportsError) {
  ModelCache cache(2);
  const auto lookup = cache.get("/nonexistent/nope.ckpt");
  EXPECT_EQ(lookup.model, nullptr);
  EXPECT_FALSE(lookup.error.empty());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ModelCache, CorruptFileReportsError) {
  testsupport::TempDir dir("model_cache");
  const auto path = (dir.path() / "junk.ckpt").string();
  std::ofstream(path) << "this is not a checkpoint";

  ModelCache cache(2);
  const auto lookup = cache.get(path);
  EXPECT_EQ(lookup.model, nullptr);
  EXPECT_FALSE(lookup.error.empty());
  EXPECT_EQ(cache.size(), 0u);  // failures are not cached
}

}  // namespace
}  // namespace cellgan::serve
