// Shared fixtures of the serving suites: synthetic checkpoints (valid grid
// snapshots without a training run) and bit-equality helpers.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/genome.hpp"
#include "core/grid.hpp"
#include "nn/gan_models.hpp"
#include "tensor/tensor.hpp"

namespace cellgan::serve_test {

/// A well-formed tiny-config checkpoint with freshly initialized networks —
/// enough for the serving plane, which only needs restorable parameters,
/// not trained ones. `seed` varies the parameters (distinct models).
inline core::Checkpoint synthetic_checkpoint(std::uint64_t seed) {
  core::Checkpoint snapshot;
  snapshot.config = core::TrainingConfig::tiny();
  snapshot.config.seed = seed;
  common::Rng rng(seed);
  const core::Grid grid(static_cast<int>(snapshot.config.grid_rows),
                        static_cast<int>(snapshot.config.grid_cols));
  for (std::uint32_t c = 0; c < snapshot.config.grid_cells(); ++c) {
    auto generator = nn::make_generator(snapshot.config.arch, rng);
    auto discriminator = nn::make_discriminator(snapshot.config.arch, rng);
    auto genome = core::CellGenome::capture(generator, discriminator);
    genome.origin_cell = c;
    // Ascending fitness makes cell 0 the unambiguous best.
    genome.g_fitness = 1.0 + 0.1 * static_cast<double>(c);
    genome.d_fitness = 1.0;
    snapshot.centers.push_back(std::move(genome));
    const auto members = grid.neighborhood_of(static_cast<int>(c));
    snapshot.mixtures.emplace_back(members.size(),
                                   1.0 / static_cast<double>(members.size()));
  }
  return snapshot;
}

inline bool bit_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    if (da[i] != db[i]) return false;
  }
  return true;
}

}  // namespace cellgan::serve_test
