// End-to-end virtual-time runs: the calibrated cost model driven by the real
// trainers must reproduce the *structure* of the paper's results — positive
// speedup of distributed over single-core, management overhead at the
// master, gather time riding on real allgather messages.
#include <gtest/gtest.h>

#include "core/distributed_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

struct VirtualRun {
  double seq_min = 0.0;
  double dist_min = 0.0;
  DistributedOutcome dist;
};

VirtualRun run_both(int side, int iterations, std::uint64_t seed) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = static_cast<std::uint32_t>(side);
  config.iterations = static_cast<std::uint32_t>(iterations);
  config.seed = seed;
  const auto dataset = make_matched_dataset(config, 100, seed);
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  const CostModel cost = CostModel::calibrated(CostProfile::table3(), probe);

  VirtualRun run;
  SequentialTrainer seq(config, dataset, cost);
  run.seq_min = seq.run().virtual_s / 60.0;
  run.dist = run_distributed(config, dataset, cost);
  run.dist_min = run.dist.virtual_makespan_s / 60.0;
  return run;
}

TEST(VirtualTimeIntegrationTest, DistributedBeatsSequential) {
  const VirtualRun run = run_both(2, 3, 1);
  EXPECT_GT(run.seq_min, 0.0);
  EXPECT_GT(run.dist_min, 0.0);
  EXPECT_GT(run.seq_min / run.dist_min, 1.5) << "no speedup from distribution";
}

TEST(VirtualTimeIntegrationTest, SpeedupGrowsWithGridSize) {
  const VirtualRun small = run_both(2, 2, 2);
  const VirtualRun big = run_both(3, 2, 2);
  const double speedup_small = small.seq_min / small.dist_min;
  const double speedup_big = big.seq_min / big.dist_min;
  EXPECT_GT(speedup_big, speedup_small);
}

TEST(VirtualTimeIntegrationTest, MasterChargesManagementPerSlave) {
  const VirtualRun run = run_both(2, 2, 3);
  const auto& master_profiler = run.dist.ranks[0].profiler;
  ASSERT_TRUE(master_profiler.has(common::routine::kManagement));
  const double mgmt_s = master_profiler.cost(common::routine::kManagement).virtual_s;
  // 4 slaves x 5.95 min x (2/200 iterations) = 14.28 virtual seconds.
  EXPECT_NEAR(mgmt_s, 4.0 * 5.95 * 60.0 * (2.0 / 200.0), 0.5);
}

TEST(VirtualTimeIntegrationTest, GatherTimeRidesOnRealMessages) {
  const VirtualRun run = run_both(2, 3, 4);
  for (std::size_t r = 1; r < run.dist.ranks.size(); ++r) {
    const double gather_vs =
        run.dist.ranks[r].profiler.cost(common::routine::kGather).virtual_s;
    EXPECT_GT(gather_vs, 0.0) << "rank " << r;
  }
}

TEST(VirtualTimeIntegrationTest, MakespanDominatedByMasterClock) {
  const VirtualRun run = run_both(2, 2, 5);
  double max_rank_time = 0.0;
  for (const auto& rank : run.dist.ranks) {
    max_rank_time = std::max(max_rank_time, rank.virtual_time_s);
  }
  EXPECT_NEAR(run.dist.virtual_makespan_s, max_rank_time, 1e-6);
}

TEST(VirtualTimeIntegrationTest, StragglerJitterMakesRunsVary) {
  // Two runs with different jitter seeds produce slightly different
  // distributed makespans — the source of the paper's +-std columns.
  const VirtualRun a = run_both(2, 3, 10);
  const VirtualRun b = run_both(2, 3, 11);
  EXPECT_NE(a.dist_min, b.dist_min);
  // ...but within a few percent of each other.
  EXPECT_NEAR(a.dist_min / b.dist_min, 1.0, 0.2);
}

TEST(VirtualTimeIntegrationTest, SequentialVirtualScalesWithIterations) {
  const VirtualRun two = run_both(2, 2, 6);
  const VirtualRun four = run_both(2, 4, 6);
  EXPECT_NEAR(four.seq_min / two.seq_min, 2.0, 0.35);
}

}  // namespace
}  // namespace cellgan::core
