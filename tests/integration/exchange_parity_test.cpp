// Cross-backend exchange-policy parity: every registered policy (cellular,
// ltfb, gap) must produce bit-identical per-cell results on all four
// backends — SequentialTrainer, ParallelTrainer, run_distributed and the
// real-TCP world — at a fixed seed, because policies are pure functions of
// (seed, cell, epoch) and consume no RNG from the training streams. Also the
// wasserstein + conditional pathway end to end on every backend, and the
// checkpoint guard that refuses to resume under a different policy.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <string>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/distributed_trainer.hpp"
#include "core/parallel_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

TrainingConfig policy_config(evolve::ExchangePolicyKind policy) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = 1;
  config.grid_cols = 2;
  config.iterations = 3;
  config.exchange_policy = policy;  // explicit: CELLGAN_EXCHANGE must not leak in
  config.exchange_every = 1;
  return config;
}

/// Run every rank of a TCP world on its own thread (the tcp_parity_test
/// harness) and return the per-rank outcomes.
std::vector<DistributedOutcome> run_tcp_world(const TrainingConfig& config,
                                              const data::Dataset& dataset) {
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  std::vector<DistributedOutcome> outcomes(static_cast<std::size_t>(world_size));
  std::promise<std::string> endpoint_promise;
  std::shared_future<std::string> endpoint = endpoint_promise.get_future().share();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      TcpWorld world;
      world.world_size = world_size;
      world.rank = rank;
      world.timeout_s = 60.0;
      if (rank == 0) {
        world.rendezvous = "127.0.0.1:0";
        world.on_listening = [&endpoint_promise](const std::string& actual) {
          endpoint_promise.set_value(actual);
        };
      } else {
        world.rendezvous = endpoint.get();
      }
      outcomes[static_cast<std::size_t>(rank)] =
          run_distributed_tcp(world, config, dataset);
    });
  }
  for (auto& thread : threads) thread.join();
  return outcomes;
}

/// All four backends on one config/dataset; every per-cell center genome and
/// fitness must match the sequential reference bit for bit.
void expect_all_backends_bit_identical(const TrainingConfig& config,
                                       const data::Dataset& dataset,
                                       const char* label) {
  const std::size_t cells = config.grid_cells();
  SequentialTrainer seq(config, dataset);
  const TrainOutcome seq_outcome = seq.run();

  ParallelTrainer par(config, dataset, /*threads=*/2);
  const TrainOutcome par_outcome = par.run();
  ASSERT_EQ(par_outcome.g_fitnesses.size(), cells) << label;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    EXPECT_EQ(par_outcome.g_fitnesses[cell], seq_outcome.g_fitnesses[cell])
        << label << " threads cell " << cell;
    EXPECT_EQ(par.cell(static_cast<int>(cell)).center_genome().generator_params,
              seq.cell(static_cast<int>(cell)).center_genome().generator_params)
        << label << " threads cell " << cell;
  }

  const DistributedOutcome dist = run_distributed(config, dataset);
  ASSERT_EQ(dist.master.results.size(), cells) << label;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const auto& center = dist.master.results[cell].center;
    const auto& reference = seq.cell(static_cast<int>(cell)).center_genome();
    EXPECT_EQ(center.g_fitness, reference.g_fitness)
        << label << " distributed cell " << cell;
    EXPECT_EQ(center.d_fitness, reference.d_fitness)
        << label << " distributed cell " << cell;
    EXPECT_EQ(center.generator_params, reference.generator_params)
        << label << " distributed cell " << cell;
    EXPECT_EQ(center.discriminator_params, reference.discriminator_params)
        << label << " distributed cell " << cell;
  }

  const auto tcp = run_tcp_world(config, dataset);
  ASSERT_EQ(tcp[0].master.results.size(), cells) << label;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const auto& over_tcp = tcp[0].master.results[cell];
    const auto& simulated = dist.master.results[cell];
    EXPECT_EQ(over_tcp.center.g_fitness, simulated.center.g_fitness)
        << label << " tcp cell " << cell;
    EXPECT_EQ(over_tcp.center.generator_params,
              simulated.center.generator_params)
        << label << " tcp cell " << cell;
    EXPECT_EQ(over_tcp.center.discriminator_params,
              simulated.center.discriminator_params)
        << label << " tcp cell " << cell;
    EXPECT_EQ(over_tcp.mixture_weights, simulated.mixture_weights)
        << label << " tcp cell " << cell;
  }
}

TEST(ExchangeParityTest, CellularPolicyIsBitIdenticalAcrossBackends) {
  const auto config = policy_config(evolve::ExchangePolicyKind::kCellular);
  const auto dataset = make_matched_dataset(config, 64, 41);
  expect_all_backends_bit_identical(config, dataset, "cellular");
}

TEST(ExchangeParityTest, LtfbPolicyIsBitIdenticalAcrossBackends) {
  const auto config = policy_config(evolve::ExchangePolicyKind::kLtfb);
  const auto dataset = make_matched_dataset(config, 64, 42);
  expect_all_backends_bit_identical(config, dataset, "ltfb");
}

TEST(ExchangeParityTest, GapPolicyIsBitIdenticalAcrossBackends) {
  const auto config = policy_config(evolve::ExchangePolicyKind::kGap);
  const auto dataset = make_matched_dataset(config, 64, 43);
  expect_all_backends_bit_identical(config, dataset, "gap");
}

TEST(ExchangeParityTest, LtfbCadenceGreaterThanOneStillMatches) {
  auto config = policy_config(evolve::ExchangePolicyKind::kLtfb);
  config.iterations = 4;
  config.exchange_every = 2;  // tournaments at epochs 2 and 4 only
  const auto dataset = make_matched_dataset(config, 64, 44);
  expect_all_backends_bit_identical(config, dataset, "ltfb every=2");
}

TEST(ExchangeParityTest, WassersteinConditionalTrainsOnAllBackends) {
  // The critic loss plus class-conditional pathway, end to end: wasserstein
  // changes the loss/clip step, conditional widens latents and discriminator
  // inputs by the one-hot plane — both must stay deterministic across all
  // four backends like any other config.
  auto config = policy_config(evolve::ExchangePolicyKind::kCellular);
  config.loss_mode = LossMode::kWasserstein;
  config.conditional = 1;
  config.weight_clip = 0.05;
  const auto dataset = make_matched_dataset(config, 64, 45);
  expect_all_backends_bit_identical(config, dataset, "wgan conditional");

  // And the critic clip actually bites: every discriminator parameter of the
  // trained centers sits inside [-clip, clip].
  SequentialTrainer seq(config, dataset);
  (void)seq.run();
  for (int cell = 0; cell < seq.cells(); ++cell) {
    for (const float w : seq.cell(cell).center_genome().discriminator_params) {
      EXPECT_LE(std::abs(w), static_cast<float>(config.weight_clip) + 1e-6f)
          << "cell " << cell;
    }
  }
}

TEST(ExchangeParityTest, WassersteinConditionalUnderLtfb) {
  // Policies compose with the loss/conditional axes.
  auto config = policy_config(evolve::ExchangePolicyKind::kLtfb);
  config.loss_mode = LossMode::kWasserstein;
  config.conditional = 1;
  const auto dataset = make_matched_dataset(config, 64, 46);
  expect_all_backends_bit_identical(config, dataset, "wgan ltfb");
}

TEST(ExchangeParityTest, CheckpointRefusesResumeUnderDifferentPolicy) {
  // A checkpoint written under one exchange policy must not silently resume
  // under another — the trajectories are incompatible. Named error, both
  // policies in the message.
  const auto cellular = policy_config(evolve::ExchangePolicyKind::kCellular);
  const auto dataset = make_matched_dataset(cellular, 64, 47);
  SequentialTrainer original(cellular, dataset);
  (void)original.run();
  const Checkpoint snapshot = original.checkpoint();

  SequentialTrainer ltfb_trainer(policy_config(evolve::ExchangePolicyKind::kLtfb),
                                 dataset);
  EXPECT_THROW(ltfb_trainer.restore(snapshot), CheckpointPolicyMismatchError);
  try {
    ltfb_trainer.restore(snapshot);
    FAIL() << "expected CheckpointPolicyMismatchError";
  } catch (const CheckpointPolicyMismatchError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cellular"), std::string::npos) << what;
    EXPECT_NE(what.find("ltfb"), std::string::npos) << what;
  }

  // Same policy resumes fine (and continues training).
  SequentialTrainer resumed(cellular, dataset);
  EXPECT_NO_THROW(resumed.restore(snapshot));
  const TrainOutcome outcome = resumed.run();
  for (const double f : outcome.g_fitnesses) EXPECT_TRUE(std::isfinite(f));
}

}  // namespace
}  // namespace cellgan::core
