// The serving tentpole end to end over real loopback TCP: train a tiny grid,
// checkpoint it, serve it, and pin the plane's contract — batched serve
// responses bit-identical to Session::sample_best(seed), cache-hit vs
// cold-load identity, live stats, and the drain-first SHUTDOWN protocol
// (pipelined requests all answered, then the ack's drain completes).
#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/session.hpp"
#include "serve/client.hpp"
#include "serve/serve_testsupport.hpp"
#include "serve/server.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::serve {
namespace {

/// Train once per suite (sequential backend, tiny spec) and share the
/// checkpoint + session across tests: the expensive part is the training
/// run, not the servers.
class ServeEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new testsupport::TempDir("serve_e2e");
    core::RunSpec spec;
    spec.config = core::TrainingConfig::tiny();
    spec.config.iterations = 2;
    spec.backend = core::Backend::kSequential;
    session_ = new core::Session(spec);
    ASSERT_TRUE(session_->prepare()) << session_->error();
    outcome_ = new core::RunResult(session_->run());
    checkpoint_path_ = (dir_->path() / "model.ckpt").string();
    ASSERT_TRUE(core::save_checkpoint(
        checkpoint_path_, session_->result_checkpoint(*outcome_)));
  }

  static void TearDownTestSuite() {
    delete outcome_;
    outcome_ = nullptr;
    delete session_;
    session_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  /// The reference bytes: the Session's own seed-addressed sampler.
  static tensor::Tensor reference(std::size_t count, std::uint64_t seed) {
    return session_->sample_best(*outcome_, count, seed);
  }

  static ServerOptions server_options() {
    ServerOptions options;
    options.checkpoint = checkpoint_path_;
    options.batch.max_batch = 8;
    options.batch.max_delay_us = 5000;
    return options;
  }

  static testsupport::TempDir* dir_;
  static core::Session* session_;
  static core::RunResult* outcome_;
  static std::string checkpoint_path_;
};

testsupport::TempDir* ServeEndToEndTest::dir_ = nullptr;
core::Session* ServeEndToEndTest::session_ = nullptr;
core::RunResult* ServeEndToEndTest::outcome_ = nullptr;
std::string ServeEndToEndTest::checkpoint_path_;

TEST_F(ServeEndToEndTest, ServedSamplesBitIdenticalToSessionSampleBest) {
  Server server(server_options());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  ServeClient client;
  ASSERT_TRUE(client.connect(server.endpoint(), 10.0, &error)) << error;

  // Pipeline several requests with distinct seeds/counts so the server
  // co-batches them, then check every response against the Session's bytes.
  const std::vector<std::pair<std::uint64_t, std::uint32_t>> requests = {
      {101, 4}, {202, 7}, {303, 1}, {404, 12}};
  std::vector<std::uint64_t> ids;
  for (const auto& [seed, count] : requests) {
    const auto id = client.send_request(seed, count);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ServeClient::Completion completion;
    ASSERT_TRUE(client.wait(ids[i], &completion, 30.0));
    ASSERT_TRUE(completion.response.ok()) << completion.response.error;

    const tensor::Tensor expected =
        reference(requests[i].second, requests[i].first);
    ASSERT_EQ(completion.response.rows, expected.rows());
    ASSERT_EQ(completion.response.cols, expected.cols());
    const auto bytes = expected.data();
    ASSERT_EQ(completion.response.samples.size(), bytes.size());
    for (std::size_t k = 0; k < bytes.size(); ++k) {
      ASSERT_EQ(completion.response.samples[k], bytes[k])
          << "request " << i << " diverged at element " << k;
    }
  }

  client.close();
  server.drain_and_stop();
}

TEST_F(ServeEndToEndTest, ColdLoadAndCacheHitReturnIdenticalBytes) {
  ServeClient::Completion cold;
  ServeClient::Completion warm;
  std::string error;
  {
    Server server(server_options());
    ASSERT_TRUE(server.start(&error)) << error;
    ServeClient client;
    ASSERT_TRUE(client.connect(server.endpoint(), 10.0, &error)) << error;

    // start() warm-loaded the checkpoint, so the first request is already a
    // cache hit; both requests on this server are warm.
    const auto id1 = client.send_request(55, 6);
    ASSERT_TRUE(client.wait(id1, &warm, 30.0));
    ASSERT_TRUE(warm.response.ok());
    EXPECT_GE(server.cache().hits(), 1u);
    EXPECT_EQ(server.cache().misses(), 1u);  // only the warm-load miss
    client.close();
    server.drain_and_stop();
  }
  {
    // A fresh server = a cold cache: same request, full reload path.
    Server server(server_options());
    ASSERT_TRUE(server.start(&error)) << error;
    ServeClient client;
    ASSERT_TRUE(client.connect(server.endpoint(), 10.0, &error)) << error;
    const auto id2 = client.send_request(55, 6);
    ASSERT_TRUE(client.wait(id2, &cold, 30.0));
    ASSERT_TRUE(cold.response.ok());
    client.close();
    server.drain_and_stop();
  }
  EXPECT_EQ(cold.response.samples, warm.response.samples);
  EXPECT_EQ(cold.response.samples,
            [] {
              const auto t = reference(6, 55);
              return std::vector<float>(t.data().begin(), t.data().end());
            }());
}

TEST_F(ServeEndToEndTest, StatsFrameReportsServerCounters) {
  Server server(server_options());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ServeClient client;
  ASSERT_TRUE(client.connect(server.endpoint(), 10.0, &error)) << error;

  const auto id = client.send_request(1, 3);
  ServeClient::Completion completion;
  ASSERT_TRUE(client.wait(id, &completion, 30.0));

  StatsResponse stats;
  ASSERT_TRUE(client.stats(&stats, 10.0));
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.samples, 3u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);  // the warm load
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.uptime_s, 0.0);

  client.close();
  server.drain_and_stop();
}

TEST_F(ServeEndToEndTest, BadCountIsRejectedNotDropped) {
  auto options = server_options();
  options.max_samples_per_request = 8;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ServeClient client;
  ASSERT_TRUE(client.connect(server.endpoint(), 10.0, &error)) << error;

  const auto id = client.send_request(1, 9);  // over the limit
  ServeClient::Completion completion;
  ASSERT_TRUE(client.wait(id, &completion, 30.0));
  EXPECT_EQ(completion.response.status,
            static_cast<std::uint32_t>(SampleStatus::kBadRequest));
  EXPECT_FALSE(completion.response.error.empty());
  EXPECT_EQ(server.rejected(), 1u);

  client.close();
  server.drain_and_stop();
}

TEST_F(ServeEndToEndTest, ShutdownDrainsPipelinedRequests) {
  Server server(server_options());
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ServeClient client;
  ASSERT_TRUE(client.connect(server.endpoint(), 10.0, &error)) << error;

  // Pipeline a burst, then SHUTDOWN immediately: the drain-first contract
  // says every request read before the shutdown frame is still answered.
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto id = client.send_request(900 + i, 5);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  ASSERT_TRUE(client.shutdown_server(10.0));
  EXPECT_TRUE(server.shutdown_requested());

  // The daemon main loop would call this on seeing shutdown_requested();
  // the test plays that role.
  server.drain_and_stop();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    ServeClient::Completion completion;
    ASSERT_TRUE(client.wait(ids[i], &completion, 30.0))
        << "request " << i << " was dropped by shutdown";
    ASSERT_TRUE(completion.response.ok()) << completion.response.error;
    const tensor::Tensor expected = reference(5, 900 + i);
    const auto bytes = expected.data();
    ASSERT_EQ(completion.response.samples.size(), bytes.size());
    for (std::size_t k = 0; k < bytes.size(); ++k) {
      ASSERT_EQ(completion.response.samples[k], bytes[k]);
    }
  }
  client.close();
}

TEST_F(ServeEndToEndTest, TelemetrySinkRecordsServeEvents) {
  const auto telemetry_path = (dir_->path() / "serve.jsonl").string();
  {
    core::EventBus bus;
    core::JsonlTelemetrySink sink(telemetry_path);
    ASSERT_TRUE(sink.ok());
    bus.subscribe(&sink);

    Server server(server_options(), &bus);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ServeClient client;
    ASSERT_TRUE(client.connect(server.endpoint(), 10.0, &error)) << error;
    const auto id = client.send_request(4, 2);
    ServeClient::Completion completion;
    ASSERT_TRUE(client.wait(id, &completion, 30.0));
    client.close();
    server.drain_and_stop();
  }
  std::ifstream in(telemetry_path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"event\":\"serve_request\""), std::string::npos);
  EXPECT_NE(all.find("\"event\":\"serve_batch\""), std::string::npos);
  EXPECT_NE(all.find("\"cache_hit\":true"), std::string::npos);
}

}  // namespace
}  // namespace cellgan::serve
