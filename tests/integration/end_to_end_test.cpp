// Whole-pipeline test: train on the synthetic dataset, evaluate the returned
// generative model with the metrics stack — the full path a user of the
// library walks through, at miniature scale.
#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"
#include "data/pgm.hpp"
#include "metrics/fid.hpp"
#include "metrics/inception_score.hpp"
#include "metrics/mode_coverage.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

TEST(EndToEndTest, TrainSampleEvaluate) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 2;
  config.iterations = 6;
  config.batches_per_iteration = 2;
  const auto dataset = make_matched_dataset(config, 400, 21);

  SequentialTrainer trainer(config, dataset);
  const TrainOutcome outcome = trainer.run();

  // Sample from the winning mixture.
  const tensor::Tensor samples =
      trainer.cell(outcome.best_cell).sample_from_mixture(100);
  ASSERT_EQ(samples.rows(), 100u);
  ASSERT_EQ(samples.cols(), config.arch.image_dim);

  // Metrics over a matched-dimension classifier.
  common::Rng rng(99);
  metrics::Classifier classifier(rng, 32, config.arch.image_dim);
  classifier.train(dataset, 3, 20, 2e-3, rng);

  const double is = metrics::inception_score(classifier, samples);
  EXPECT_GE(is, 1.0);
  EXPECT_LE(is, 10.0 + 1e-9);

  const double fid =
      metrics::fid_score(classifier, dataset.images.slice_rows(0, 100), samples);
  EXPECT_TRUE(std::isfinite(fid));
  EXPECT_GE(fid, -0.5);  // numerically near-zero lower bound

  const auto modes = metrics::mode_report(classifier, samples);
  std::size_t total = 0;
  for (const auto c : modes.class_counts) total += c;
  EXPECT_EQ(total, 100u);
}

TEST(EndToEndTest, TrainingImprovesGeneratorAgainstFixedCritic) {
  // Real-data FID of mixture samples should not degrade as training runs
  // longer (weak monotonicity check appropriate for 6 vs 1 iterations of a
  // tiny GAN; full convergence is out of scope for unit tests).
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 2;
  config.batches_per_iteration = 4;
  const auto dataset = make_matched_dataset(config, 400, 22);

  config.iterations = 1;
  SequentialTrainer short_trainer(config, dataset);
  const TrainOutcome short_outcome = short_trainer.run();

  config.iterations = 10;
  SequentialTrainer long_trainer(config, dataset);
  const TrainOutcome long_outcome = long_trainer.run();

  // Generator loss against its own discriminator after more coevolution
  // should be no worse (both trained adversarially, so compare best cells).
  EXPECT_LE(long_outcome.g_fitnesses[long_outcome.best_cell],
            short_outcome.g_fitnesses[short_outcome.best_cell] + 0.5);
}

TEST(EndToEndTest, PaperArchitectureRunsAtTinyScale) {
  // One iteration of the paper's full-size networks end to end: exercises
  // the exact Table I topology (64-256-256-784 / 784-256-256-1).
  TrainingConfig config;  // paper defaults
  config.grid_rows = config.grid_cols = 2;
  config.iterations = 1;
  config.batch_size = 20;
  config.fitness_eval_samples = 20;
  const auto dataset = make_matched_dataset(config, 60, 23);

  SequentialTrainer trainer(config, dataset);
  const TrainOutcome outcome = trainer.run();
  for (const double f : outcome.g_fitnesses) EXPECT_TRUE(std::isfinite(f));
  const auto genome = trainer.cell(0).center_genome();
  EXPECT_EQ(genome.generator_params.size(), 283920u);
  EXPECT_EQ(genome.discriminator_params.size(), 267009u);
}

TEST(EndToEndTest, SampleSheetIsWritable) {
  TrainingConfig config;  // paper arch produces 28x28 images
  config.grid_rows = config.grid_cols = 2;
  config.iterations = 1;
  config.batch_size = 10;
  config.fitness_eval_samples = 10;
  const auto dataset = make_matched_dataset(config, 40, 24);
  SequentialTrainer trainer(config, dataset);
  (void)trainer.run();
  const tensor::Tensor samples = trainer.cell(0).sample_from_mixture(4);
  const testsupport::TempDir tmp{"cellgan_e2e"};
  EXPECT_TRUE(data::write_pgm_grid(tmp.file("e2e_samples.pgm").string(), samples.data(), 4, 2));
}

}  // namespace
}  // namespace cellgan::core
