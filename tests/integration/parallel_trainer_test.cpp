// ParallelTrainer correctness: the thread-parallel trainer must be a pure
// scheduling change — bit-identical fitness trajectories across thread
// counts and against SequentialTrainer on the same seed (the double-buffered
// exchange plus per-cell rng streams make this a hard guarantee, not a
// tolerance), matching per-routine virtual totals and flops counts, and a
// virtual-time makespan that shrinks with lanes (the "p cores" column).
#include "core/parallel_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

TrainingConfig small_config(int side, int iterations) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = static_cast<std::uint32_t>(side);
  config.iterations = static_cast<std::uint32_t>(iterations);
  return config;
}

void expect_bit_identical(const TrainOutcome& a, const TrainOutcome& b,
                          const char* label) {
  ASSERT_EQ(a.g_fitnesses.size(), b.g_fitnesses.size()) << label;
  for (std::size_t i = 0; i < a.g_fitnesses.size(); ++i) {
    EXPECT_EQ(a.g_fitnesses[i], b.g_fitnesses[i]) << label << " cell " << i;
    EXPECT_EQ(a.d_fitnesses[i], b.d_fitnesses[i]) << label << " cell " << i;
  }
  EXPECT_EQ(a.best_cell, b.best_cell) << label;
  // Flops totals are integer-valued doubles, so sums are exact in any order.
  EXPECT_EQ(a.train_flops, b.train_flops) << label;
}

TEST(ParallelTrainerTest, DeterministicAcrossThreadCounts2x2) {
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 21);
  SequentialTrainer seq(config, dataset);
  const TrainOutcome reference = seq.run();
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ParallelTrainer par(config, dataset, threads);
    const TrainOutcome outcome = par.run();
    expect_bit_identical(reference, outcome,
                         threads == 1 ? "1 thread" : threads == 2 ? "2 threads"
                                                                  : "4 threads");
  }
}

TEST(ParallelTrainerTest, DeterministicAcrossThreadCounts3x3) {
  const TrainingConfig config = small_config(3, 2);
  const auto dataset = make_matched_dataset(config, 100, 22);
  SequentialTrainer seq(config, dataset);
  const TrainOutcome reference = seq.run();
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ParallelTrainer par(config, dataset, threads);
    const TrainOutcome outcome = par.run();
    expect_bit_identical(reference, outcome, "3x3 grid");
  }
}

TEST(ParallelTrainerTest, RunsAllCellsAllIterations) {
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 23);
  ParallelTrainer trainer(config, dataset, 4);
  const TrainOutcome outcome = trainer.run();
  EXPECT_EQ(outcome.g_fitnesses.size(), 4u);
  for (int cell = 0; cell < trainer.cells(); ++cell) {
    EXPECT_EQ(trainer.cell(cell).iteration(), 3u);
    EXPECT_TRUE(std::isfinite(outcome.g_fitnesses[cell]));
  }
  EXPECT_GT(outcome.wall_s, 0.0);
  EXPECT_GT(outcome.train_flops, 0.0);
}

TEST(ParallelTrainerTest, LanesClampToCellCount) {
  const TrainingConfig config = small_config(2, 1);
  const auto dataset = make_matched_dataset(config, 100, 24);
  ParallelTrainer trainer(config, dataset, 16);
  EXPECT_EQ(trainer.lanes(), 4u);  // 2x2 grid: one lane per cell at most
  const TrainOutcome outcome = trainer.run();
  EXPECT_EQ(outcome.g_fitnesses.size(), 4u);
}

TEST(ParallelTrainerTest, ProfilerTotalsMatchSequential) {
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 25);
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  const CostModel cost = CostModel::calibrated(CostProfile::table3(), probe);
  SequentialTrainer seq(config, dataset, cost);
  ParallelTrainer par(config, dataset, 4, cost);
  const TrainOutcome seq_outcome = seq.run();
  const TrainOutcome par_outcome = par.run();
  for (const char* routine :
       {common::routine::kTrain, common::routine::kUpdateGenomes,
        common::routine::kMutate, common::routine::kGather}) {
    const double seq_vs = seq_outcome.profiler.cost(routine).virtual_s;
    const double par_vs = par_outcome.profiler.cost(routine).virtual_s;
    // Same charges summed in a different order: equal up to rounding.
    EXPECT_NEAR(par_vs, seq_vs, 1e-9 * std::max(1.0, seq_vs)) << routine;
    EXPECT_EQ(seq_outcome.profiler.cost(routine).calls,
              par_outcome.profiler.cost(routine).calls)
        << routine;
  }
  EXPECT_EQ(seq_outcome.train_flops, par_outcome.train_flops);
}

TEST(ParallelTrainerTest, VirtualMakespanShrinksWithLanes) {
  // The "p cores" effect in virtual time: with the grid split across lanes,
  // the per-epoch makespan is the max over lanes, so 4 lanes on a 2x2 grid
  // should approach a 4x virtual speedup over the serial sum.
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 26);
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  const CostModel cost = CostModel::calibrated(CostProfile::table3(), probe);
  SequentialTrainer seq(config, dataset, cost);
  ParallelTrainer par(config, dataset, 4, cost);
  const double seq_virtual = seq.run().virtual_s;
  const double par_virtual = par.run().virtual_s;
  EXPECT_GT(par_virtual, 0.0);
  EXPECT_GT(seq_virtual / par_virtual, 2.0) << "no virtual speedup from lanes";
  EXPECT_LE(par_virtual, seq_virtual);
}

TEST(ParallelTrainerTest, CheckpointInteropWithSequential) {
  // A checkpoint taken from the sequential trainer resumes identically under
  // the parallel trainer (and vice versa): the core machinery is shared.
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 27);
  SequentialTrainer original(config, dataset);
  (void)original.run();
  const Checkpoint snapshot = original.checkpoint();

  SequentialTrainer seq_resumed(config, dataset);
  seq_resumed.restore(snapshot);
  ParallelTrainer par_resumed(config, dataset, 2);
  par_resumed.restore(snapshot);
  const TrainOutcome seq_outcome = seq_resumed.run();
  const TrainOutcome par_outcome = par_resumed.run();
  expect_bit_identical(seq_outcome, par_outcome, "resumed run");
  EXPECT_EQ(par_resumed.cell(0).iteration(), 4u);
}

TEST(ParallelTrainerTest, SelectableBehindCommonInterface) {
  const TrainingConfig config = small_config(2, 1);
  const auto dataset = make_matched_dataset(config, 100, 28);
  for (const std::size_t threads : {1u, 2u}) {
    std::unique_ptr<InProcessTrainer> trainer;
    if (threads > 1) {
      trainer = std::make_unique<ParallelTrainer>(config, dataset, threads);
    } else {
      trainer = std::make_unique<SequentialTrainer>(config, dataset);
    }
    const TrainOutcome outcome = trainer->run();
    EXPECT_EQ(outcome.g_fitnesses.size(), 4u);
    EXPECT_EQ(trainer->cells(), 4);
  }
}

}  // namespace
}  // namespace cellgan::core
