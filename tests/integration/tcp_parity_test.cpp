// The acceptance gate of the multi-process deployment: a world of real
// TCP-connected ranks (one Runtime + TcpTransport per "process", threads
// standing in for processes so the suite needs no fork) must produce
// per-rank outcomes bit-identical to run_distributed's thread-per-rank
// simulation on the same seed — same fitnesses, same genomes, same virtual
// clocks. The process-level twin of this check is the cellgan_launch
// --verify-parity smoke ctest.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "core/distributed_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/session.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

TrainingConfig parity_config() {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = 1;
  config.grid_cols = 2;
  config.iterations = 2;
  return config;
}

/// Run every rank of a TCP world on its own thread (each owns a private
/// Runtime + transport talking over loopback) and return the per-rank
/// outcomes.
std::vector<DistributedOutcome> run_tcp_world(const TrainingConfig& config,
                                              const data::Dataset& dataset,
                                              const CostModel& cost_model) {
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  std::vector<DistributedOutcome> outcomes(static_cast<std::size_t>(world_size));
  std::promise<std::string> endpoint_promise;
  std::shared_future<std::string> endpoint = endpoint_promise.get_future().share();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      TcpWorld world;
      world.world_size = world_size;
      world.rank = rank;
      world.timeout_s = 60.0;
      if (rank == 0) {
        world.rendezvous = "127.0.0.1:0";
        world.on_listening = [&endpoint_promise](const std::string& actual) {
          endpoint_promise.set_value(actual);
        };
      } else {
        world.rendezvous = endpoint.get();
      }
      outcomes[static_cast<std::size_t>(rank)] =
          run_distributed_tcp(world, config, dataset, cost_model);
    });
  }
  for (auto& thread : threads) thread.join();
  return outcomes;
}

void expect_parity(const std::vector<DistributedOutcome>& tcp,
                   const DistributedOutcome& inproc) {
  const auto& master = tcp[0].master;
  ASSERT_EQ(master.results.size(), inproc.master.results.size());
  for (std::size_t cell = 0; cell < master.results.size(); ++cell) {
    const auto& over_tcp = master.results[cell];
    const auto& simulated = inproc.master.results[cell];
    EXPECT_EQ(over_tcp.cell_id, simulated.cell_id) << "cell " << cell;
    EXPECT_EQ(over_tcp.center.g_fitness, simulated.center.g_fitness)
        << "cell " << cell;
    EXPECT_EQ(over_tcp.center.d_fitness, simulated.center.d_fitness)
        << "cell " << cell;
    EXPECT_EQ(over_tcp.center.generator_params, simulated.center.generator_params)
        << "cell " << cell;
    EXPECT_EQ(over_tcp.mixture_weights, simulated.mixture_weights)
        << "cell " << cell;
    EXPECT_EQ(over_tcp.virtual_time_s, simulated.virtual_time_s)
        << "cell " << cell;
  }
  EXPECT_EQ(master.best_cell, inproc.master.best_cell);
  EXPECT_EQ(master.node_names, inproc.master.node_names);
  EXPECT_EQ(tcp[0].virtual_makespan_s, inproc.virtual_makespan_s);
  // Every rank's virtual clock, read in its own process-equivalent.
  for (std::size_t rank = 1; rank < tcp.size(); ++rank) {
    EXPECT_EQ(tcp[rank].ranks[rank].virtual_time_s,
              inproc.ranks[rank].virtual_time_s)
        << "rank " << rank;
  }
}

TEST(TcpParityTest, RealTimeWorldMatchesInProcessBitForBit) {
  const TrainingConfig config = parity_config();
  const auto dataset = make_matched_dataset(config, 64, 21);
  const auto tcp = run_tcp_world(config, dataset, CostModel{});
  const auto inproc = run_distributed(config, dataset, CostModel{});
  expect_parity(tcp, inproc);
}

TEST(TcpParityTest, CalibratedVirtualClocksMatchInProcessBitForBit) {
  // With the table3 cost model the virtual clocks move on every charge and
  // message; any divergence in jitter streams, message costs or split
  // accounting between the two deployments would show up here.
  const TrainingConfig config = parity_config();
  const auto dataset = make_matched_dataset(config, 64, 21);
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  CostProfile profile = CostProfile::table3();
  profile.reference_iterations = static_cast<double>(config.iterations);
  const CostModel cost_model = CostModel::calibrated(profile, probe);

  const auto tcp = run_tcp_world(config, dataset, cost_model);
  const auto inproc = run_distributed(config, dataset, cost_model);
  expect_parity(tcp, inproc);
  EXPECT_GT(tcp[0].virtual_makespan_s, 0.0);
}

TEST(TcpParityTest, SessionBackendRequiresWorldEnvironment) {
  // Without a CELLGAN_* world this process cannot be a rank: prepare()
  // succeeds (the backend is registered) but run() raises a descriptive
  // error instead of aborting or hanging.
  RunSpec spec;
  spec.backend = Backend::kDistributedTcp;
  spec.config = parity_config();
  spec.dataset.samples = 32;
  Session session(spec);
  ASSERT_TRUE(session.prepare()) << session.error();
  try {
    (void)session.run();
    FAIL() << "expected a runtime error about the missing CELLGAN_* world";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("CELLGAN_"), std::string::npos);
  }
}

}  // namespace
}  // namespace cellgan::core
