// Determinism of the unified TrainObserver stream across execution vehicles,
// in the style of the existing parity suites: the serialized EpochRecord
// stream must be bit-identical across SequentialTrainer and ParallelTrainer
// at 1/2/4 lanes (every field of a record is schedule-independent by
// construction), and bit-identical between the in-process distributed
// simulation and a real TCP world on the same seed. That is the guarantee
// that makes telemetry, metric evaluation and checkpoint policies portable
// across backends.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "core/distributed_trainer.hpp"
#include "core/observer.hpp"
#include "core/parallel_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/session.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

/// Captures each completed epoch as its serialized wire form — byte equality
/// of two streams is exactly the "bit-identical" claim.
class StreamRecorder final : public TrainObserver {
 public:
  void on_epoch_completed(const EpochRecord& record) override {
    stream.push_back(record.serialize());
  }
  std::vector<std::vector<std::uint8_t>> stream;
};

TrainingConfig parity_config() {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 2;
  config.iterations = 3;
  config.genome_record_every = 2;  // exercise genome payload parity too
  return config;
}

CostModel table3_cost(const TrainingConfig& config, const data::Dataset& dataset) {
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  CostProfile profile = CostProfile::table3();
  profile.reference_iterations = static_cast<double>(config.iterations);
  return CostModel::calibrated(profile, probe);
}

void expect_streams_identical(const StreamRecorder& a, const StreamRecorder& b,
                              const std::string& label) {
  ASSERT_EQ(a.stream.size(), b.stream.size()) << label;
  for (std::size_t epoch = 0; epoch < a.stream.size(); ++epoch) {
    EXPECT_EQ(a.stream[epoch], b.stream[epoch])
        << label << ": epoch " << epoch << " records differ";
  }
}

TEST(ObserverParityTest, SequentialAndThreadsStreamsBitIdentical) {
  const TrainingConfig config = parity_config();
  const auto dataset = make_matched_dataset(config, 64, 21);
  const CostModel cost = table3_cost(config, dataset);

  StreamRecorder sequential_stream;
  {
    EventBus bus;
    bus.subscribe(&sequential_stream);
    SequentialTrainer trainer(config, dataset, cost);
    trainer.set_observers(&bus);
    (void)trainer.run();
  }
  ASSERT_EQ(sequential_stream.stream.size(), config.iterations);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    StreamRecorder parallel_stream;
    EventBus bus;
    bus.subscribe(&parallel_stream);
    ParallelTrainer trainer(config, dataset, threads, cost);
    trainer.set_observers(&bus);
    (void)trainer.run();
    expect_streams_identical(sequential_stream, parallel_stream,
                             "threads=" + std::to_string(threads));
  }
}

TEST(ObserverParityTest, SessionBackendsPublishTheSameStream) {
  // The same parity through the facade: a Session-subscribed observer sees
  // an identical stream from the sequential and threads backends.
  RunSpec spec;
  spec.config = parity_config();
  spec.dataset.samples = 64;
  spec.dataset.seed = 21;

  StreamRecorder sequential_stream;
  {
    Session session(spec);
    session.observers().subscribe(&sequential_stream);
    (void)session.run();
  }

  RunSpec threads_spec = spec;
  threads_spec.backend = Backend::kThreads;
  threads_spec.threads = 3;
  StreamRecorder threads_stream;
  Session session(threads_spec);
  session.observers().subscribe(&threads_stream);
  (void)session.run();
  expect_streams_identical(sequential_stream, threads_stream, "session");
}

/// One rank of a TCP world on its own thread (private Runtime + transport
/// over loopback), with rank 0 publishing to `bus` — the same harness as the
/// tcp parity suite, plus observation.
void run_tcp_world(const TrainingConfig& config, const data::Dataset& dataset,
                   const CostModel& cost_model, EventBus* rank0_bus) {
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  std::promise<std::string> endpoint_promise;
  std::shared_future<std::string> endpoint = endpoint_promise.get_future().share();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      TcpWorld world;
      world.world_size = world_size;
      world.rank = rank;
      world.timeout_s = 60.0;
      if (rank == 0) {
        world.rendezvous = "127.0.0.1:0";
        world.on_listening = [&endpoint_promise](const std::string& actual) {
          endpoint_promise.set_value(actual);
        };
      } else {
        world.rendezvous = endpoint.get();
      }
      Master::Options options;
      if (rank == 0) options.observers = rank0_bus;
      (void)run_distributed_tcp(world, config, dataset, cost_model, options);
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(ObserverParityTest, InProcessAndTcpDistributedStreamsBitIdentical) {
  TrainingConfig config = parity_config();
  config.grid_rows = 1;  // 1x2 grid keeps the forked world small
  config.grid_cols = 2;
  const auto dataset = make_matched_dataset(config, 64, 21);
  const CostModel cost = table3_cost(config, dataset);

  StreamRecorder inproc_stream;
  {
    EventBus bus;
    bus.subscribe(&inproc_stream);
    Master::Options options;
    options.observers = &bus;
    (void)run_distributed(config, dataset, cost, options);
  }
  ASSERT_EQ(inproc_stream.stream.size(), config.iterations);

  StreamRecorder tcp_stream;
  EventBus bus;
  bus.subscribe(&tcp_stream);
  run_tcp_world(config, dataset, cost, &bus);
  expect_streams_identical(inproc_stream, tcp_stream, "tcp vs in-process");
}

TEST(ObserverParityTest, DistributedRecordsMatchCollectedResults) {
  // Cross-check the forwarded records against the master's own reduction:
  // the final epoch's fitnesses, genomes and mixtures are the ones the
  // GLOBAL gather collects.
  TrainingConfig config = parity_config();
  config.genome_record_every = config.iterations;  // genomes on the last epoch
  const auto dataset = make_matched_dataset(config, 64, 21);

  EventBus bus;
  StreamRecorder recorder;
  bus.subscribe(&recorder);
  Master::Options options;
  options.observers = &bus;
  const DistributedOutcome outcome =
      run_distributed(config, dataset, CostModel{}, options);

  ASSERT_EQ(recorder.stream.size(), config.iterations);
  const EpochRecord last = EpochRecord::deserialize(recorder.stream.back());
  ASSERT_EQ(last.cells.size(), outcome.master.results.size());
  for (std::size_t cell = 0; cell < last.cells.size(); ++cell) {
    const auto& collected = outcome.master.results[cell];
    EXPECT_EQ(last.cells[cell].g_fitness, collected.center.g_fitness);
    EXPECT_EQ(last.cells[cell].d_fitness, collected.center.d_fitness);
    EXPECT_EQ(last.cells[cell].mixture_weights, collected.mixture_weights);
    const CellGenome genome = CellGenome::deserialize(last.cells[cell].genome);
    EXPECT_EQ(genome.generator_params, collected.center.generator_params);
  }
  EXPECT_EQ(last.best_cell(), outcome.master.best_cell);
}

}  // namespace
}  // namespace cellgan::core
