// Heartbeat protocol + slave state machine (Fig. 2 / Fig. 3) under a live
// minimpi world: state transitions, status replies, and unresponsive-slave
// detection when a slave mutes its main thread.
#include <gtest/gtest.h>

#include <atomic>

#include "core/distributed_trainer.hpp"
#include "core/heartbeat.hpp"
#include "core/slave.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

TEST(HeartbeatTest, MonitorSeesProcessingThenFinished) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 1;
  config.iterations = 30;
  const auto dataset = make_matched_dataset(config, 60, 1);

  std::atomic<bool> saw_processing{false};
  minimpi::Runtime runtime(2);
  runtime.run([&](minimpi::Comm& world) {
    auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    auto global = world.split(0, world.rank());
    if (world.rank() == 0) {
      Master::Options options;
      options.heartbeat.interval_s = 0.002;
      options.heartbeat.reply_timeout_s = 0.05;
      Master master(world, *global, config, CostModel{}, options);
      const MasterOutcome outcome = master.run();
      EXPECT_EQ(outcome.results.size(), 1u);
    } else {
      Slave::Options slave_options;
      slave_options.on_iteration = [&](std::uint32_t) {};
      Slave slave(world, *local, *global, dataset, CostModel{},
                  std::move(slave_options));
      // Observe own state machine from a probe thread while running.
      std::thread observer([&] {
        for (int i = 0; i < 200; ++i) {
          if (slave.state() == protocol::SlaveState::kProcessing) {
            saw_processing.store(true);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
      const protocol::SlaveResult result = slave.run();
      observer.join();
      EXPECT_EQ(slave.state(), protocol::SlaveState::kFinished);
      EXPECT_EQ(result.cell_id, 0u);
    }
  });
  EXPECT_TRUE(saw_processing.load());
}

TEST(HeartbeatTest, UnresponsiveSlaveTriggersAlarm) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 1;
  config.iterations = 400;  // long enough for several heartbeat cycles
  const auto dataset = make_matched_dataset(config, 60, 2);

  std::atomic<bool> mute{true};  // muted from the start
  std::atomic<int> alarms{0};
  minimpi::Runtime runtime(2);
  runtime.run([&](minimpi::Comm& world) {
    auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    auto global = world.split(0, world.rank());
    if (world.rank() == 0) {
      // Drive the monitor directly so the alarm callback is observable.
      HeartbeatMonitor::Options hb;
      hb.interval_s = 0.002;
      hb.reply_timeout_s = 0.005;
      hb.miss_threshold = 3;
      HeartbeatMonitor monitor(world, hb);
      monitor.set_on_unresponsive([&](int rank) {
        EXPECT_EQ(rank, 1);
        alarms.fetch_add(1);
        mute.store(false);  // let the slave recover so the run finishes
      });

      Master::Options options;
      options.enable_heartbeat = false;  // we run our own monitor here
      Master master(world, *global, config, CostModel{}, options);
      monitor.start();
      (void)master.run();
      monitor.stop();
    } else {
      Slave::Options slave_options;
      slave_options.mute_heartbeat = &mute;
      Slave slave(world, *local, *global, dataset, CostModel{},
                  std::move(slave_options));
      (void)slave.run();
    }
  });
  EXPECT_GE(alarms.load(), 1);
}

TEST(HeartbeatTest, SnapshotTracksIterationProgress) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 1;
  config.iterations = 200;
  const auto dataset = make_matched_dataset(config, 60, 3);

  std::atomic<std::uint32_t> max_seen{0};
  minimpi::Runtime runtime(2);
  runtime.run([&](minimpi::Comm& world) {
    auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    auto global = world.split(0, world.rank());
    if (world.rank() == 0) {
      HeartbeatMonitor::Options hb;
      hb.interval_s = 0.001;
      hb.reply_timeout_s = 0.05;
      HeartbeatMonitor monitor(world, hb);
      Master::Options options;
      options.enable_heartbeat = false;
      Master master(world, *global, config, CostModel{}, options);
      monitor.start();
      std::thread sampler([&] {
        for (int i = 0; i < 100; ++i) {
          const auto snapshot = monitor.snapshot();
          if (!snapshot.empty()) {
            max_seen.store(std::max(max_seen.load(), snapshot[0].iteration));
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
      (void)master.run();
      sampler.join();
      monitor.stop();
    } else {
      Slave slave(world, *local, *global, dataset, CostModel{});
      (void)slave.run();
    }
  });
  EXPECT_GT(max_seen.load(), 0u);  // progress was visible through heartbeats
}

}  // namespace
}  // namespace cellgan::core
