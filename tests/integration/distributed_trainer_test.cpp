#include "core/distributed_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace cellgan::core {
namespace {

TrainingConfig small_config(int side, int iterations) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = static_cast<std::uint32_t>(side);
  config.iterations = static_cast<std::uint32_t>(iterations);
  return config;
}

TEST(DistributedTrainerTest, CompletesAndCollectsAllCells) {
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 1);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  ASSERT_EQ(outcome.master.results.size(), 4u);
  for (std::uint32_t cell = 0; cell < 4; ++cell) {
    const auto& result = outcome.master.results[cell];
    EXPECT_EQ(result.cell_id, cell);
    EXPECT_EQ(result.center.iteration, 3u);
    EXPECT_TRUE(std::isfinite(result.center.g_fitness));
    EXPECT_EQ(result.center.generator_params.size(),
              config.arch.generator_parameter_count());
  }
  EXPECT_EQ(outcome.ranks.size(), 5u);  // master + 4 slaves
}

TEST(DistributedTrainerTest, NodeNamesReported) {
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 2);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  ASSERT_EQ(outcome.master.node_names.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(outcome.master.node_names[s], "node-" + std::to_string(s + 1));
  }
}

TEST(DistributedTrainerTest, BestCellIsArgmin) {
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 3);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  const double best = outcome.master.results[outcome.master.best_cell].center.g_fitness;
  for (const auto& result : outcome.master.results) {
    EXPECT_GE(result.center.g_fitness, best);
  }
}

TEST(DistributedTrainerTest, MixtureWeightsAreSimplex) {
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 4);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  for (const auto& result : outcome.master.results) {
    ASSERT_EQ(result.mixture_weights.size(), 3u);  // 2x2 torus: s = 3
    double total = 0.0;
    for (const double w : result.mixture_weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DistributedTrainerTest, SlaveProfilersCoverRoutines) {
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 5);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  for (std::size_t r = 1; r < outcome.ranks.size(); ++r) {
    const auto& profiler = outcome.ranks[r].profiler;
    EXPECT_TRUE(profiler.has(common::routine::kTrain)) << "rank " << r;
    EXPECT_TRUE(profiler.has(common::routine::kGather)) << "rank " << r;
    EXPECT_EQ(profiler.cost(common::routine::kTrain).calls, 2u);
  }
  // Master carries the management bucket.
  EXPECT_TRUE(outcome.ranks[0].profiler.has(common::routine::kManagement));
}

TEST(DistributedTrainerTest, ThreeByThreeGridWorks) {
  const TrainingConfig config = small_config(3, 2);
  const auto dataset = make_matched_dataset(config, 100, 6);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  EXPECT_EQ(outcome.master.results.size(), 9u);
  for (const auto& result : outcome.master.results) {
    EXPECT_EQ(result.mixture_weights.size(), 5u);  // full five-cell hood
  }
}

TEST(DistributedTrainerTest, HeartbeatObservesCycles) {
  TrainingConfig config = small_config(2, 4);
  const auto dataset = make_matched_dataset(config, 100, 7);
  Master::Options options;
  options.heartbeat.interval_s = 0.002;
  options.heartbeat.reply_timeout_s = 0.05;
  const DistributedOutcome outcome =
      run_distributed(config, dataset, CostModel{}, options);
  EXPECT_GE(outcome.master.heartbeat_cycles, 1u);
}

TEST(DistributedTrainerTest, HeartbeatDisabledStillCompletes) {
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 8);
  Master::Options options;
  options.enable_heartbeat = false;
  const DistributedOutcome outcome =
      run_distributed(config, dataset, CostModel{}, options);
  EXPECT_EQ(outcome.master.results.size(), 4u);
  EXPECT_EQ(outcome.master.heartbeat_cycles, 0u);
}

TEST(DistributedTrainerTest, AsyncExchangeModeCompletes) {
  TrainingConfig config = small_config(3, 4);
  config.exchange_mode = ExchangeMode::kAsyncNeighbors;
  // Async transport only carries neighbor genomes: pin the cellular policy so
  // a CELLGAN_EXCHANGE override cannot pick one that needs more.
  config.exchange_policy = evolve::ExchangePolicyKind::kCellular;
  const auto dataset = make_matched_dataset(config, 100, 10);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  ASSERT_EQ(outcome.master.results.size(), 9u);
  for (const auto& result : outcome.master.results) {
    EXPECT_EQ(result.center.iteration, 4u);
    EXPECT_TRUE(std::isfinite(result.center.g_fitness));
  }
}

TEST(DistributedTrainerTest, AsyncExchangeStillSpreadsGenomes) {
  // With enough iterations every cell must have installed neighbor bytes
  // (update_genomes calls > 0 on every slave's profiler).
  TrainingConfig config = small_config(2, 6);
  config.exchange_mode = ExchangeMode::kAsyncNeighbors;
  config.exchange_policy = evolve::ExchangePolicyKind::kCellular;
  const auto dataset = make_matched_dataset(config, 100, 11);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  for (std::size_t r = 1; r < outcome.ranks.size(); ++r) {
    EXPECT_GT(outcome.ranks[r].profiler.cost(common::routine::kUpdateGenomes).calls,
              0u);
  }
}

TEST(DistributedTrainerTest, ResultsMatchSequentialStructure) {
  // Same config through both harnesses: identical genome sizes and finite
  // fitness everywhere (trajectories differ by exchange schedule; see
  // DESIGN.md on asynchronous vs lockstep exchange).
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 9);
  SequentialTrainer seq(config, dataset);
  const TrainOutcome seq_outcome = seq.run();
  const DistributedOutcome dist_outcome = run_distributed(config, dataset);
  ASSERT_EQ(seq_outcome.g_fitnesses.size(), dist_outcome.master.results.size());
  for (std::size_t cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(seq.cell(static_cast<int>(cell)).center_genome().generator_params.size(),
              dist_outcome.master.results[cell].center.generator_params.size());
  }
}

}  // namespace
}  // namespace cellgan::core
