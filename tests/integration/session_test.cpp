// Backend parity of the core::Session facade: a Session run must be a pure
// wrapper — bit-identical to calling the legacy entry points
// (SequentialTrainer, ParallelTrainer, run_distributed) directly with the
// same configuration — plus the facade-only surfaces: IDX dataset
// resolution with clear errors, the backend registry, checkpoint interop
// and the RunResult JSON artifact.
#include "core/session.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/parallel_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"
#include "data/idx.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

RunSpec small_spec(Backend backend, int side, int iterations) {
  RunSpec spec;
  spec.backend = backend;
  spec.config = TrainingConfig::tiny();
  spec.config.grid_rows = spec.config.grid_cols = static_cast<std::uint32_t>(side);
  spec.config.iterations = static_cast<std::uint32_t>(iterations);
  spec.dataset.samples = 100;
  spec.dataset.seed = 21;
  return spec;
}

/// The legacy calibration the spec's table3 profile must reproduce.
CostModel legacy_table3_cost(const TrainingConfig& config,
                             const data::Dataset& dataset) {
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  CostProfile profile = CostProfile::table3();
  profile.reference_iterations = static_cast<double>(config.iterations);
  return CostModel::calibrated(profile, probe);
}

void expect_bit_identical(const RunResult& facade, const TrainOutcome& legacy) {
  ASSERT_EQ(facade.g_fitnesses.size(), legacy.g_fitnesses.size());
  for (std::size_t i = 0; i < legacy.g_fitnesses.size(); ++i) {
    EXPECT_EQ(facade.g_fitnesses[i], legacy.g_fitnesses[i]) << "cell " << i;
    EXPECT_EQ(facade.d_fitnesses[i], legacy.d_fitnesses[i]) << "cell " << i;
  }
  EXPECT_EQ(facade.best_cell, legacy.best_cell);
  EXPECT_EQ(facade.train_flops, legacy.train_flops);
  EXPECT_EQ(facade.virtual_s, legacy.virtual_s);
}

TEST(SessionTest, SequentialBackendBitIdenticalToLegacy) {
  const RunSpec spec = small_spec(Backend::kSequential, 2, 3);
  Session session(spec);
  const RunResult facade = session.run();

  const auto dataset = make_matched_dataset(spec.config, 100, 21);
  SequentialTrainer legacy(spec.config, dataset);
  expect_bit_identical(facade, legacy.run());
  EXPECT_FALSE(facade.distributed());
  EXPECT_NE(session.trainer(), nullptr);
}

TEST(SessionTest, SequentialBackendBitIdenticalWithCostModel) {
  RunSpec spec = small_spec(Backend::kSequential, 2, 3);
  spec.cost_profile = CostProfileKind::kTable3;
  Session session(spec);
  const RunResult facade = session.run();

  const auto dataset = make_matched_dataset(spec.config, 100, 21);
  SequentialTrainer legacy(spec.config, dataset,
                           legacy_table3_cost(spec.config, dataset));
  expect_bit_identical(facade, legacy.run());
  EXPECT_GT(facade.virtual_s, 0.0);
}

TEST(SessionTest, ThreadsBackendBitIdenticalToLegacy) {
  RunSpec spec = small_spec(Backend::kThreads, 2, 3);
  spec.threads = 2;
  Session session(spec);
  const RunResult facade = session.run();

  const auto dataset = make_matched_dataset(spec.config, 100, 21);
  ParallelTrainer legacy(spec.config, dataset, 2);
  expect_bit_identical(facade, legacy.run());
}

TEST(SessionTest, DistributedBackendBitIdenticalToLegacy) {
  RunSpec spec = small_spec(Backend::kDistributed, 2, 2);
  spec.cost_profile = CostProfileKind::kTable3;
  Session session(spec);
  const RunResult facade = session.run();

  const auto dataset = make_matched_dataset(spec.config, 100, 21);
  const DistributedOutcome legacy = run_distributed(
      spec.config, dataset, legacy_table3_cost(spec.config, dataset));
  ASSERT_EQ(facade.g_fitnesses.size(), legacy.master.results.size());
  for (std::size_t i = 0; i < legacy.master.results.size(); ++i) {
    EXPECT_EQ(facade.g_fitnesses[i], legacy.master.results[i].center.g_fitness);
    EXPECT_EQ(facade.d_fitnesses[i], legacy.master.results[i].center.d_fitness);
  }
  EXPECT_EQ(facade.best_cell, legacy.master.best_cell);
  EXPECT_EQ(facade.virtual_s, legacy.virtual_makespan_s);
  EXPECT_TRUE(facade.distributed());
  EXPECT_EQ(facade.ranks.size(), legacy.ranks.size());
  EXPECT_EQ(facade.cell_results.size(), 4u);
  EXPECT_EQ(session.trainer(), nullptr);
}

TEST(SessionTest, AllBackendsAgreeOnFitnesses) {
  // The cross-backend guarantee behind the whole facade: same spec, same
  // final fitness trajectory, whichever vehicle executed it.
  const RunSpec base = small_spec(Backend::kSequential, 2, 2);
  Session sequential(base);
  const RunResult reference = sequential.run();
  for (const Backend backend : {Backend::kThreads, Backend::kDistributed}) {
    RunSpec spec = base;
    spec.backend = backend;
    Session session(spec);
    const RunResult outcome = session.run();
    ASSERT_EQ(outcome.g_fitnesses.size(), reference.g_fitnesses.size());
    for (std::size_t i = 0; i < reference.g_fitnesses.size(); ++i) {
      EXPECT_EQ(outcome.g_fitnesses[i], reference.g_fitnesses[i])
          << to_string(backend) << " cell " << i;
    }
    EXPECT_EQ(outcome.best_cell, reference.best_cell) << to_string(backend);
  }
}

TEST(SessionTest, SampleBestWorksOnEveryBackend) {
  for (const Backend backend : kAllBackends) {
    RunSpec spec = small_spec(backend, 2, 2);
    Session session(spec);
    const RunResult outcome = session.run();
    const tensor::Tensor samples = session.sample_best(outcome, 3);
    EXPECT_EQ(samples.rows(), 3u) << to_string(backend);
    EXPECT_EQ(samples.cols(), spec.config.arch.image_dim) << to_string(backend);
  }
}

TEST(SessionTest, ExternalDatasetsMatchResolvedOnes) {
  // Sweep benchmarks resolve once and share via set_datasets; results must
  // equal a session that resolved the same spec itself, with no copy made.
  const RunSpec spec = small_spec(Backend::kSequential, 2, 2);
  Session resolved(spec);
  const RunResult reference = resolved.run();

  const auto train = make_matched_dataset(spec.config, 100, 21);
  const auto test = make_matched_dataset(spec.config, 16, 22);
  Session external(spec);
  external.set_datasets(train, test);
  const RunResult outcome = external.run();
  ASSERT_EQ(outcome.g_fitnesses.size(), reference.g_fitnesses.size());
  for (std::size_t i = 0; i < reference.g_fitnesses.size(); ++i) {
    EXPECT_EQ(outcome.g_fitnesses[i], reference.g_fitnesses[i]);
  }
  EXPECT_EQ(&external.train_set(), &train);
  EXPECT_EQ(&external.test_set(), &test);
}

TEST(SessionTest, CheckpointInteropWithLegacyTrainer) {
  const RunSpec spec = small_spec(Backend::kSequential, 2, 2);
  Session original(spec);
  (void)original.run();
  const Checkpoint snapshot = original.checkpoint();

  Session resumed(spec);
  ASSERT_TRUE(resumed.restore(snapshot));
  const RunResult facade = resumed.run();

  const auto dataset = make_matched_dataset(spec.config, 100, 21);
  SequentialTrainer legacy(spec.config, dataset);
  legacy.restore(snapshot);
  expect_bit_identical(facade, legacy.run());
}

TEST(SessionTest, IdxDatasetResolvesAndDownsamples) {
  testsupport::TempDir dir("session_idx");
  // Write a tiny 28x28 IDX quartet; the tiny architecture (64 pixels) makes
  // the Session downsample to 8x8 on load.
  const auto write_pair = [&](const char* image_name, const char* label_name,
                              std::uint32_t count) {
    data::IdxImages images;
    images.count = count;
    images.rows = images.cols = 28;
    images.pixels.assign(count * 28 * 28, 128);
    ASSERT_TRUE(data::write_idx_images(dir.file(image_name).string(), images));
    std::vector<std::uint8_t> labels(count, 3);
    ASSERT_TRUE(data::write_idx_labels(dir.file(label_name).string(), labels));
  };
  write_pair("train-images-idx3-ubyte", "train-labels-idx1-ubyte", 32);
  write_pair("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", 8);

  RunSpec spec = small_spec(Backend::kSequential, 2, 1);
  spec.dataset.kind = DatasetSpec::Kind::kIdx;
  spec.dataset.idx_dir = dir.path().string();
  Session session(spec);
  ASSERT_TRUE(session.prepare()) << session.error();
  EXPECT_EQ(session.train_set().size(), 32u);
  EXPECT_EQ(session.test_set().size(), 8u);
  EXPECT_EQ(session.train_set().images.cols(), spec.config.arch.image_dim);
  const RunResult outcome = session.run();
  EXPECT_EQ(outcome.g_fitnesses.size(), 4u);
}

TEST(SessionTest, MissingIdxFilesGiveClearError) {
  testsupport::TempDir dir("session_idx_missing");
  RunSpec spec = small_spec(Backend::kSequential, 2, 1);
  spec.dataset.kind = DatasetSpec::Kind::kIdx;
  spec.dataset.idx_dir = dir.path().string();
  Session session(spec);
  EXPECT_FALSE(session.prepare());
  EXPECT_NE(session.error().find("train-images-idx3-ubyte"), std::string::npos)
      << session.error();
  EXPECT_NE(session.error().find(dir.path().string()), std::string::npos);
  // prepare() stays failed (no half-initialized state).
  EXPECT_FALSE(session.prepare());
}

TEST(SessionTest, IdxRefusesUpscaling) {
  testsupport::TempDir dir("session_idx_big");
  RunSpec spec = small_spec(Backend::kSequential, 2, 1);
  spec.config.arch.image_dim = 1024;  // 32x32 > MNIST's 28x28
  spec.dataset.kind = DatasetSpec::Kind::kIdx;
  spec.dataset.idx_dir = dir.path().string();
  Session session(spec);
  EXPECT_FALSE(session.prepare());
  EXPECT_NE(session.error().find("synthetic"), std::string::npos)
      << session.error();
}

TEST(SessionTest, ResultJsonWritten) {
  testsupport::TempDir dir("session_json");
  RunSpec spec = small_spec(Backend::kSequential, 2, 1);
  spec.result_json = dir.file("result.json").string();
  Session session(spec);
  (void)session.run();
  std::ifstream in(spec.result_json);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"backend\": \"sequential\""), std::string::npos);
  EXPECT_NE(text.str().find("\"g_fitnesses\""), std::string::npos);
  EXPECT_NE(text.str().find("\"spec\""), std::string::npos);
}

TEST(SessionTest, RegistryAcceptsNewBackends) {
  // The extension seam: a new execution vehicle registers a factory and is
  // constructible through the same registry the built-ins use.
  auto& registry = BackendRegistry::instance();
  const auto names = registry.names();
  EXPECT_GE(names.size(), 3u);
  for (const Backend backend : kAllBackends) {
    EXPECT_NE(std::find(names.begin(), names.end(), to_string(backend)),
              names.end());
  }

  class EchoBackend final : public SessionBackend {
   public:
    RunResult run() override {
      RunResult result;
      result.best_cell = 7;
      return result;
    }
  };
  registry.register_backend("test-echo", [](const BackendContext&) {
    return std::make_unique<EchoBackend>();
  });

  const RunSpec spec = small_spec(Backend::kSequential, 2, 1);
  const data::Dataset dataset = make_matched_dataset(spec.config, 16, 1);
  const CostModel cost;
  const Master::Options options;
  const BackendContext context{spec, dataset, cost, options};
  auto backend = registry.create("test-echo", context);
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->run().best_cell, 7);
  EXPECT_EQ(backend->trainer(), nullptr);
  EXPECT_EQ(registry.create("no-such-backend", context), nullptr);
}

}  // namespace
}  // namespace cellgan::core
