#include "core/sequential_trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.hpp"

namespace cellgan::core {
namespace {

TrainingConfig small_config(int side, int iterations) {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = static_cast<std::uint32_t>(side);
  config.iterations = static_cast<std::uint32_t>(iterations);
  return config;
}

TEST(SequentialTrainerTest, RunsAllCellsAllIterations) {
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 1);
  SequentialTrainer trainer(config, dataset);
  const TrainOutcome outcome = trainer.run();
  EXPECT_EQ(outcome.g_fitnesses.size(), 4u);
  EXPECT_EQ(outcome.d_fitnesses.size(), 4u);
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(trainer.cell(cell).iteration(), 3u);
    EXPECT_TRUE(std::isfinite(outcome.g_fitnesses[cell]));
  }
  EXPECT_GT(outcome.wall_s, 0.0);
}

TEST(SequentialTrainerTest, BestCellIsArgminGeneratorFitness) {
  const TrainingConfig config = small_config(3, 2);
  const auto dataset = make_matched_dataset(config, 100, 2);
  SequentialTrainer trainer(config, dataset);
  const TrainOutcome outcome = trainer.run();
  for (const double f : outcome.g_fitnesses) {
    EXPECT_GE(f, outcome.g_fitnesses[outcome.best_cell]);
  }
}

TEST(SequentialTrainerTest, DeterministicAcrossRuns) {
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 3);
  SequentialTrainer a(config, dataset);
  SequentialTrainer b(config, dataset);
  const TrainOutcome oa = a.run();
  const TrainOutcome ob = b.run();
  ASSERT_EQ(oa.g_fitnesses.size(), ob.g_fitnesses.size());
  for (std::size_t i = 0; i < oa.g_fitnesses.size(); ++i) {
    EXPECT_DOUBLE_EQ(oa.g_fitnesses[i], ob.g_fitnesses[i]);
    EXPECT_DOUBLE_EQ(oa.d_fitnesses[i], ob.d_fitnesses[i]);
  }
  EXPECT_EQ(oa.best_cell, ob.best_cell);
}

TEST(SequentialTrainerTest, SeedChangesOutcome) {
  TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 4);
  SequentialTrainer a(config, dataset);
  config.seed = 4343;
  SequentialTrainer b(config, dataset);
  const TrainOutcome oa = a.run();
  const TrainOutcome ob = b.run();
  bool any_different = false;
  for (std::size_t i = 0; i < oa.g_fitnesses.size(); ++i) {
    if (oa.g_fitnesses[i] != ob.g_fitnesses[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(SequentialTrainerTest, ProfilerCoversAllRoutines) {
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 5);
  SequentialTrainer trainer(config, dataset);
  const TrainOutcome outcome = trainer.run();
  for (const char* routine :
       {common::routine::kTrain, common::routine::kUpdateGenomes,
        common::routine::kMutate, common::routine::kGather}) {
    EXPECT_TRUE(outcome.profiler.has(routine)) << routine;
  }
  // train/update/mutate are called once per cell per iteration.
  EXPECT_EQ(outcome.profiler.cost(common::routine::kTrain).calls, 4u * 2u);
}

TEST(SequentialTrainerTest, NeighborGenomesFlowBetweenCells) {
  // After >= 2 iterations, every cell must have installed neighbor bytes.
  const TrainingConfig config = small_config(2, 3);
  const auto dataset = make_matched_dataset(config, 100, 6);
  SequentialTrainer trainer(config, dataset);
  (void)trainer.run();
  for (int cell = 0; cell < trainer.cells(); ++cell) {
    EXPECT_GT(trainer.cell(cell).last_update_bytes(), 0.0) << "cell " << cell;
  }
}

TEST(SequentialTrainerTest, VirtualTimeZeroWithoutCostModel) {
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 7);
  SequentialTrainer trainer(config, dataset);
  const TrainOutcome outcome = trainer.run();
  EXPECT_DOUBLE_EQ(outcome.virtual_s, 0.0);
}

TEST(SequentialTrainerTest, WorkloadProbeMeasuresPositiveWork) {
  const TrainingConfig config = small_config(3, 2);
  const auto dataset = make_matched_dataset(config, 100, 8);
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  EXPECT_GT(probe.train_flops, 0.0);
  EXPECT_GT(probe.update_bytes, 0.0);
  EXPECT_GT(probe.genome_bytes, 0.0);
  // Update bytes = 4 neighbor genomes on a 3x3 grid.
  EXPECT_NEAR(probe.update_bytes, 4.0 * probe.genome_bytes, 1.0);
}

TEST(SequentialTrainerTest, CalibratedRunAccumulatesVirtualTime) {
  const TrainingConfig config = small_config(2, 2);
  const auto dataset = make_matched_dataset(config, 100, 9);
  const WorkloadProbe probe = SequentialTrainer::measure_workload(config, dataset);
  const CostModel cost = CostModel::calibrated(CostProfile::table3(), probe);
  SequentialTrainer trainer(config, dataset, cost);
  const TrainOutcome outcome = trainer.run();
  EXPECT_GT(outcome.virtual_s, 0.0);
  // Virtual time must dwarf anything wall-clock at paper calibration.
  EXPECT_GT(outcome.virtual_s, outcome.wall_s);
  EXPECT_GT(outcome.profiler.cost(common::routine::kTrain).virtual_s, 0.0);
  EXPECT_GT(outcome.profiler.cost(common::routine::kGather).virtual_s, 0.0);
}

}  // namespace
}  // namespace cellgan::core
