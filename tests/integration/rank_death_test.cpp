// The survivor-parity gate of the recovery protocol: a TCP world that runs
// with recovery enabled — rolling per-rank checkpoints, offer/plan rollback
// negotiation, restore-and-replay — must produce results bit-identical to
// run_distributed's undisturbed in-process simulation, both on a fresh run
// and when the world is forced to roll back and replay from checkpoints
// with one epoch of inter-rank skew. Threads stand in for processes (no
// fork, so the suite runs under ASan); the process-level twin with a real
// SIGKILL and a launcher respawn is the examples.launch_chaos_smoke ctest.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <thread>

#include "core/distributed_trainer.hpp"
#include "core/rank_state.hpp"
#include "core/workload.hpp"
#include "minimpi/errors.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

TrainingConfig recovery_config() {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = 1;
  config.grid_cols = 2;
  config.iterations = 4;
  return config;
}

/// Run every rank of a TCP world on its own thread with the given recovery
/// policy and return the per-rank outcomes (the tcp_parity_test harness,
/// plus recovery).
std::vector<DistributedOutcome> run_recovering_world(
    const TrainingConfig& config, const data::Dataset& dataset,
    const RecoveryOptions& recovery) {
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  std::vector<DistributedOutcome> outcomes(static_cast<std::size_t>(world_size));
  std::promise<std::string> endpoint_promise;
  std::shared_future<std::string> endpoint = endpoint_promise.get_future().share();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      TcpWorld world;
      world.world_size = world_size;
      world.rank = rank;
      world.timeout_s = 60.0;
      if (rank == 0) {
        world.rendezvous = "127.0.0.1:0";
        world.on_listening = [&endpoint_promise](const std::string& actual) {
          endpoint_promise.set_value(actual);
        };
      } else {
        world.rendezvous = endpoint.get();
      }
      outcomes[static_cast<std::size_t>(rank)] = run_distributed_tcp(
          world, config, dataset, CostModel{}, Master::Options{}, recovery);
    });
  }
  for (auto& thread : threads) thread.join();
  return outcomes;
}

void expect_parity(const std::vector<DistributedOutcome>& tcp,
                   const DistributedOutcome& inproc) {
  const auto& master = tcp[0].master;
  ASSERT_EQ(master.results.size(), inproc.master.results.size());
  for (std::size_t cell = 0; cell < master.results.size(); ++cell) {
    const auto& recovered = master.results[cell];
    const auto& simulated = inproc.master.results[cell];
    EXPECT_EQ(recovered.center.g_fitness, simulated.center.g_fitness)
        << "cell " << cell;
    EXPECT_EQ(recovered.center.d_fitness, simulated.center.d_fitness)
        << "cell " << cell;
    EXPECT_EQ(recovered.center.generator_params,
              simulated.center.generator_params)
        << "cell " << cell;
    EXPECT_EQ(recovered.mixture_weights, simulated.mixture_weights)
        << "cell " << cell;
    EXPECT_EQ(recovered.virtual_time_s, simulated.virtual_time_s)
        << "cell " << cell;
  }
  EXPECT_EQ(master.best_cell, inproc.master.best_cell);
  EXPECT_EQ(tcp[0].virtual_makespan_s, inproc.virtual_makespan_s);
  for (std::size_t rank = 1; rank < tcp.size(); ++rank) {
    EXPECT_EQ(tcp[rank].ranks[rank].virtual_time_s,
              inproc.ranks[rank].virtual_time_s)
        << "rank " << rank;
  }
}

TEST(RankDeathTest, RecoveryEnabledRunKeepsParityAndRollsCheckpoints) {
  const TrainingConfig config = recovery_config();
  const auto dataset = make_matched_dataset(config, 64, 21);
  testsupport::TempDir dir("rank-death");

  RecoveryOptions recovery;
  recovery.enabled = true;
  recovery.state_dir = dir.path().string();

  const auto tcp = run_recovering_world(config, dataset, recovery);
  const auto inproc = run_distributed(config, dataset, CostModel{});
  expect_parity(tcp, inproc);

  // Every slave left a latest checkpoint at the final epoch, ready for a
  // future rejoin.
  for (int rank = 1; rank <= 2; ++rank) {
    const auto latest =
        load_latest_rank_checkpoint(recovery.state_dir, rank);
    ASSERT_TRUE(latest.has_value()) << "rank " << rank;
    EXPECT_EQ(latest->epoch, config.iterations) << "rank " << rank;
  }
}

TEST(RankDeathTest, RejoinFromRolledBackCheckpointReplaysBitIdentically) {
  // The rejoin path end to end, with checkpoint skew: rank 1's newest
  // checkpoint is one epoch behind rank 2's (exactly the skew the lockstep
  // allgather bounds), so the negotiation must settle on the older epoch
  // and rank 2 must restore from its non-latest slot. The replayed world's
  // results must be bit-identical to an undisturbed run.
  const TrainingConfig config = recovery_config();
  const auto dataset = make_matched_dataset(config, 64, 21);
  testsupport::TempDir dir("rank-death-rejoin");

  RecoveryOptions recovery;
  recovery.enabled = true;
  recovery.state_dir = dir.path().string();

  // Seed the state directory with the rolling checkpoints of a full run.
  (void)run_recovering_world(config, dataset, recovery);

  // Knock rank 1 back one epoch: drop its latest slot (epoch N lives in
  // slot N % 2), leaving epoch N-1 as its best offer.
  const std::string latest_slot = rank_checkpoint_path(
      recovery.state_dir, /*rank=*/1, static_cast<int>(config.iterations % 2));
  ASSERT_TRUE(std::filesystem::remove(latest_slot)) << latest_slot;
  ASSERT_EQ(load_latest_rank_checkpoint(recovery.state_dir, 1)->epoch,
            config.iterations - 1);

  // A fresh world over the same state directory is exactly what the
  // launcher's respawned generation looks like: everyone rejoins at the
  // rendezvous, offers their newest epoch (N-1 vs N), rolls back to the
  // minimum and replays the tail.
  const auto rejoined = run_recovering_world(config, dataset, recovery);
  const auto inproc = run_distributed(config, dataset, CostModel{});
  expect_parity(rejoined, inproc);
}

TEST(RankDeathTest, RecoveryDisabledUnderAsyncExchangeStillCompletes) {
  // kAsyncNeighbors has no lockstep to bound checkpoint skew, so recovery
  // is refused (with a warning) rather than offering a rollback that could
  // break parity — and the run itself proceeds untouched.
  TrainingConfig config = recovery_config();
  config.exchange_mode = ExchangeMode::kAsyncNeighbors;
  // Async transport only carries neighbor genomes: pin the cellular policy so
  // a CELLGAN_EXCHANGE override cannot pick one that needs more.
  config.exchange_policy = evolve::ExchangePolicyKind::kCellular;
  const auto dataset = make_matched_dataset(config, 64, 21);
  testsupport::TempDir dir("rank-death-async");

  RecoveryOptions recovery;
  recovery.enabled = true;
  recovery.state_dir = dir.path().string();

  const auto tcp = run_recovering_world(config, dataset, recovery);
  EXPECT_EQ(tcp[0].master.results.size(), 2u);
  // No lockstep, no rolling checkpoints.
  EXPECT_FALSE(load_latest_rank_checkpoint(recovery.state_dir, 1).has_value());
}

}  // namespace
}  // namespace cellgan::core
