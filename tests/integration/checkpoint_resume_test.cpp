// Checkpoint/resume continuity: a run interrupted at iteration k and resumed
// from its checkpoint must carry over the exact center parameters, learning
// rates, fitness bookkeeping and mixture weights.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "core/distributed_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

TrainingConfig test_config() {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 2;
  config.iterations = 4;
  return config;
}

TEST(CheckpointResumeTest, SnapshotCapturesTrainedState) {
  const TrainingConfig config = test_config();
  const auto dataset = make_matched_dataset(config, 100, 31);
  SequentialTrainer trainer(config, dataset);
  (void)trainer.run();
  Checkpoint snapshot = trainer.checkpoint();
  EXPECT_EQ(snapshot.centers.size(), 4u);
  EXPECT_EQ(snapshot.iteration, 4u);
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(snapshot.centers[cell].origin_cell, static_cast<std::uint32_t>(cell));
    EXPECT_DOUBLE_EQ(snapshot.centers[cell].g_fitness,
                     trainer.cell(cell).g_fitness());
  }
}

TEST(CheckpointResumeTest, RestoreReproducesCentersExactly) {
  const TrainingConfig config = test_config();
  const auto dataset = make_matched_dataset(config, 100, 32);
  SequentialTrainer original(config, dataset);
  (void)original.run();
  const Checkpoint snapshot = original.checkpoint();

  SequentialTrainer resumed(config, dataset);
  resumed.restore(snapshot);
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(resumed.cell(cell).center_genome().generator_params,
              original.cell(cell).center_genome().generator_params);
    EXPECT_DOUBLE_EQ(resumed.cell(cell).g_learning_rate(),
                     original.cell(cell).g_learning_rate());
    EXPECT_EQ(resumed.cell(cell).iteration(), original.cell(cell).iteration());
    EXPECT_EQ(resumed.cell(cell).mixture().weights(),
              original.cell(cell).mixture().weights());
  }
}

TEST(CheckpointResumeTest, ResumedTrainingContinuesFromState) {
  const TrainingConfig config = test_config();
  const auto dataset = make_matched_dataset(config, 100, 33);
  SequentialTrainer trainer(config, dataset);
  (void)trainer.run();
  const Checkpoint snapshot = trainer.checkpoint();

  SequentialTrainer resumed(config, dataset);
  resumed.restore(snapshot);
  const TrainOutcome outcome = resumed.run();  // 4 more epochs
  EXPECT_EQ(resumed.cell(0).iteration(), 8u);
  for (const double f : outcome.g_fitnesses) EXPECT_TRUE(std::isfinite(f));
}

TEST(CheckpointResumeTest, DiskRoundtripThroughTrainer) {
  const TrainingConfig config = test_config();
  const auto dataset = make_matched_dataset(config, 100, 34);
  SequentialTrainer trainer(config, dataset);
  (void)trainer.run();

  const testsupport::TempDir tmp{"cellgan_resume"};
  const std::string path = tmp.file("resume.ckpt").string();
  ASSERT_TRUE(save_checkpoint(path, trainer.checkpoint()));
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.has_value());

  SequentialTrainer resumed(config, dataset);
  resumed.restore(*loaded);
  EXPECT_EQ(resumed.cell(1).center_genome().generator_params,
            trainer.cell(1).center_genome().generator_params);
}

TEST(CheckpointResumeTest, GridMismatchAborts) {
  const TrainingConfig config = test_config();
  const auto dataset = make_matched_dataset(config, 100, 35);
  SequentialTrainer trainer(config, dataset);
  Checkpoint wrong;
  wrong.config = config;
  wrong.centers.resize(9);  // 3x3 snapshot into a 2x2 trainer
  EXPECT_DEATH(trainer.restore(wrong), "precondition");
}

TEST(CheckpointResumeTest, DistributedResultsBecomeResumableCheckpoint) {
  // Train distributed, checkpoint the master's collected results, resume in
  // the sequential trainer: cross-mode persistence.
  const TrainingConfig config = test_config();
  const auto dataset = make_matched_dataset(config, 100, 37);
  const DistributedOutcome outcome = run_distributed(config, dataset);
  const Checkpoint snapshot =
      checkpoint_from_results(config, outcome.master.results);
  EXPECT_EQ(snapshot.centers.size(), 4u);
  EXPECT_EQ(snapshot.iteration, config.iterations);

  SequentialTrainer resumed(config, dataset);
  resumed.restore(snapshot);
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(resumed.cell(cell).center_genome().generator_params,
              outcome.master.results[cell].center.generator_params);
  }
  const TrainOutcome continued = resumed.run();
  for (const double f : continued.g_fitnesses) EXPECT_TRUE(std::isfinite(f));
}

TEST(CheckpointResumeTest, MustangsLossModeSurvivesRoundtrip) {
  TrainingConfig config = test_config();
  config.loss_mode = LossMode::kMustangs;
  const auto dataset = make_matched_dataset(config, 100, 36);
  SequentialTrainer trainer(config, dataset);
  (void)trainer.run();
  const Checkpoint snapshot = trainer.checkpoint();
  EXPECT_EQ(snapshot.config.loss_mode, LossMode::kMustangs);
  const Checkpoint loaded = Checkpoint::deserialize(snapshot.serialize());
  EXPECT_EQ(loaded.config.loss_mode, LossMode::kMustangs);
}

}  // namespace
}  // namespace cellgan::core
