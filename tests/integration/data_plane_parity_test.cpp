// The data-plane acceptance gate: --data-plane store must be bit-identical
// to the legacy loader on every backend — same seeds, same fitness
// trajectories, same genomes — including across the TCP deployment (the
// plane rides the config broadcast) and the mmap-backed IDX ingest path.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "core/distributed_trainer.hpp"
#include "core/session.hpp"
#include "core/workload.hpp"
#include "data/idx.hpp"
#include "data/synthetic_mnist.hpp"
#include "datastore/data_plane.hpp"
#include "testsupport/temp_dir.hpp"

namespace cellgan::core {
namespace {

TrainingConfig parity_config() {
  TrainingConfig config = TrainingConfig::tiny();
  config.grid_rows = 1;
  config.grid_cols = 2;
  config.iterations = 3;
  return config;
}

RunResult run_once(Backend backend, datastore::DataPlane plane,
                   const data::Dataset& train, const data::Dataset& test) {
  RunSpec spec;
  spec.backend = backend;
  spec.threads = 2;
  spec.config = parity_config();
  spec.config.data_plane = plane;
  Session session(spec);
  session.set_datasets(train, test);
  EXPECT_TRUE(session.prepare()) << session.error();
  return session.run();
}

TEST(DataPlaneParityTest, StoreMatchesLegacyOnEveryInProcessBackend) {
  const TrainingConfig config = parity_config();
  const auto train = make_matched_dataset(config, 64, 21);
  const auto test = make_matched_dataset(config, 16, 22);
  for (const Backend backend : kAllBackends) {
    const RunResult legacy =
        run_once(backend, datastore::DataPlane::kLegacy, train, test);
    const RunResult store =
        run_once(backend, datastore::DataPlane::kStore, train, test);
    EXPECT_EQ(legacy.g_fitnesses, store.g_fitnesses) << to_string(backend);
    EXPECT_EQ(legacy.d_fitnesses, store.d_fitnesses) << to_string(backend);
    EXPECT_EQ(legacy.best_cell, store.best_cell) << to_string(backend);
  }
}

TEST(DataPlaneParityTest, StorePlaneRidesTheTcpConfigBroadcast) {
  // A TCP world whose MASTER spec asks for the store plane: slaves learn the
  // plane from the config broadcast (they never see the CLI), and the whole
  // deployment must still match the in-process legacy run bit for bit.
  TrainingConfig config = parity_config();
  config.iterations = 2;
  const auto dataset = make_matched_dataset(config, 64, 21);

  TrainingConfig store_config = config;
  store_config.data_plane = datastore::DataPlane::kStore;
  const int world_size = static_cast<int>(config.grid_cells()) + 1;
  std::vector<DistributedOutcome> outcomes(static_cast<std::size_t>(world_size));
  std::promise<std::string> endpoint_promise;
  std::shared_future<std::string> endpoint = endpoint_promise.get_future().share();
  std::vector<std::thread> threads;
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      TcpWorld world;
      world.world_size = world_size;
      world.rank = rank;
      world.timeout_s = 60.0;
      if (rank == 0) {
        world.rendezvous = "127.0.0.1:0";
        world.on_listening = [&endpoint_promise](const std::string& actual) {
          endpoint_promise.set_value(actual);
        };
      } else {
        world.rendezvous = endpoint.get();
      }
      outcomes[static_cast<std::size_t>(rank)] =
          run_distributed_tcp(world, store_config, dataset, CostModel{});
    });
  }
  for (auto& thread : threads) thread.join();

  const DistributedOutcome legacy = run_distributed(config, dataset, CostModel{});
  const auto& tcp_master = outcomes[0].master;
  ASSERT_EQ(tcp_master.results.size(), legacy.master.results.size());
  for (std::size_t cell = 0; cell < tcp_master.results.size(); ++cell) {
    EXPECT_EQ(tcp_master.results[cell].center.g_fitness,
              legacy.master.results[cell].center.g_fitness)
        << "cell " << cell;
    EXPECT_EQ(tcp_master.results[cell].center.generator_params,
              legacy.master.results[cell].center.generator_params)
        << "cell " << cell;
  }
  EXPECT_EQ(tcp_master.best_cell, legacy.master.best_cell);
}

TEST(DataPlaneParityTest, MmapIdxSessionMatchesLegacyAndPublishesTelemetry) {
  // Full-resolution IDX dataset on disk -> the Session binds the mmap-backed
  // store. The store-plane run must match the legacy run bit for bit AND
  // emit a data_store telemetry event whose counters show real prefetching.
  testsupport::TempDir tmp{"cellgan_plane"};
  const std::size_t train_n = 64, test_n = 8;
  const auto write_split = [&](const char* images_name, const char* labels_name,
                               std::size_t n, std::uint64_t seed) {
    const data::Dataset set = data::make_synthetic_mnist(n, seed);
    data::IdxImages images;
    images.count = static_cast<std::uint32_t>(n);
    images.rows = data::kImageSide;
    images.cols = data::kImageSide;
    images.pixels.resize(n * data::kImageDim);
    const auto floats = set.images.data();
    for (std::size_t i = 0; i < floats.size(); ++i) {
      const float v = (floats[i] + 1.0f) * 127.5f;
      images.pixels[i] =
          static_cast<std::uint8_t>(std::max(0.0f, std::min(255.0f, v)));
    }
    ASSERT_TRUE(data::write_idx_images(tmp.file(images_name).string(), images));
    std::vector<std::uint8_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = static_cast<std::uint8_t>(set.labels[i]);
    }
    ASSERT_TRUE(data::write_idx_labels(tmp.file(labels_name).string(), labels));
  };
  write_split("train-images-idx3-ubyte", "train-labels-idx1-ubyte", train_n, 3);
  write_split("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte", test_n, 4);

  const auto run_plane = [&](datastore::DataPlane plane,
                             const std::string& telemetry) {
    RunSpec spec;
    spec.backend = Backend::kSequential;
    spec.config = parity_config();
    spec.config.arch.image_dim = data::kImageDim;  // full-res: mmap bind path
    spec.config.iterations = 2;
    spec.config.data_plane = plane;
    spec.dataset.kind = DatasetSpec::Kind::kIdx;
    spec.dataset.idx_dir = tmp.path().string();
    spec.observers.telemetry = telemetry;
    Session session(spec);
    EXPECT_TRUE(session.prepare()) << session.error();
    return session.run();
  };

  const RunResult legacy =
      run_plane(datastore::DataPlane::kLegacy, std::string());
  const std::string telemetry_path = tmp.file("telemetry.jsonl").string();
  const RunResult store = run_plane(datastore::DataPlane::kStore, telemetry_path);
  EXPECT_EQ(legacy.g_fitnesses, store.g_fitnesses);
  EXPECT_EQ(legacy.d_fitnesses, store.d_fitnesses);

  std::ifstream telemetry(telemetry_path);
  ASSERT_TRUE(telemetry.good());
  std::stringstream buffer;
  buffer << telemetry.rdbuf();
  const std::string stream = buffer.str();
  EXPECT_NE(stream.find("\"event\":\"data_store\""), std::string::npos);
  EXPECT_NE(stream.find("\"bytes_mapped\":"), std::string::npos)
      << "store plane over IDX data should report the live mapping";
}

}  // namespace
}  // namespace cellgan::core
