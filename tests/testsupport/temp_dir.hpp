#pragma once

#include <cstdint>
#include <filesystem>
#include <string_view>

namespace cellgan::testsupport {

// RAII scratch directory for tests that touch the filesystem. Each instance
// creates a unique directory under the system temp root and removes it (and
// everything inside) on destruction, so tests never depend on hard-coded
// paths or leak state between runs.
class TempDir {
 public:
  TempDir() : TempDir("cellgan") {}
  explicit TempDir(std::string_view tag);
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) { other.path_.clear(); }
  TempDir& operator=(TempDir&&) = delete;

  const std::filesystem::path& path() const { return path_; }

  // Convenience: a path to `name` inside the scratch directory.
  std::filesystem::path file(std::string_view name) const { return path_ / name; }

 private:
  std::filesystem::path path_;
};

// A seed that is stable across runs but distinct per test case: derived from
// the currently running GoogleTest suite/test name. Use instead of
// time-based or globally shared seeds so suites stay order-independent.
std::uint64_t deterministic_seed();

// Same, offset for tests that need several independent streams.
std::uint64_t deterministic_seed(std::uint64_t stream);

}  // namespace cellgan::testsupport
