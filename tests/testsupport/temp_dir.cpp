#include "testsupport/temp_dir.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <random>
#include <string>
#include <system_error>

namespace cellgan::testsupport {
namespace {

std::filesystem::path unique_path(std::string_view tag) {
  static std::atomic<std::uint64_t> counter{0};
  std::random_device rd;
  // Mix in the pid: random_device may legally be deterministic, and ctest -j
  // launches many test processes concurrently against the same temp root.
  const std::uint64_t nonce = (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
                              (static_cast<std::uint64_t>(::getpid()) << 20) ^
                              counter.fetch_add(1);
  return std::filesystem::temp_directory_path() /
         (std::string(tag) + "-" + std::to_string(nonce));
}

}  // namespace

TempDir::TempDir(std::string_view tag) : path_(unique_path(tag)) {
  std::filesystem::create_directories(path_);
}

TempDir::~TempDir() {
  if (path_.empty()) return;
  std::error_code ec;  // best effort: never throw from a destructor
  std::filesystem::remove_all(path_, ec);
}

std::uint64_t deterministic_seed() { return deterministic_seed(0); }

std::uint64_t deterministic_seed(std::uint64_t stream) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + stream;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    const std::string name = std::string(info->test_suite_name()) + "." + info->name();
    for (const char c : name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

}  // namespace cellgan::testsupport
