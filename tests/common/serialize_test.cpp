#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace cellgan::common {
namespace {

TEST(SerializeTest, ScalarRoundtrip) {
  ByteWriter w;
  w.write<std::uint32_t>(0xdeadbeef);
  w.write<double>(3.14159);
  w.write<std::int8_t>(-7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.14159);
  EXPECT_EQ(r.read<std::int8_t>(), -7);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, VectorRoundtrip) {
  ByteWriter w;
  const std::vector<float> values{1.0f, -2.5f, 3.25f};
  w.write_vector(values);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_vector<float>(), values);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, EmptyVectorRoundtrip) {
  ByteWriter w;
  w.write_vector(std::vector<std::uint64_t>{});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.read_vector<std::uint64_t>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, StringRoundtrip) {
  ByteWriter w;
  w.write_string("hello world");
  w.write_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello world");
  EXPECT_EQ(r.read_string(), "");
}

TEST(SerializeTest, MixedSequenceRoundtrip) {
  ByteWriter w;
  w.write<std::uint16_t>(7);
  w.write_string("abc");
  w.write_vector(std::vector<double>{1.5, 2.5});
  w.write<bool>(true);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::uint16_t>(), 7);
  EXPECT_EQ(r.read_string(), "abc");
  EXPECT_EQ(r.read_vector<double>(), (std::vector<double>{1.5, 2.5}));
  EXPECT_TRUE(r.read<bool>());
}

TEST(SerializeTest, SizeTracksContent) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.write<std::uint64_t>(1);
  EXPECT_EQ(w.size(), 8u);
  w.write_vector(std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(w.size(), 8u + 8u + 2 * sizeof(float));
}

TEST(SerializeTest, RemainingCountsDown) {
  ByteWriter w;
  w.write<std::uint32_t>(1);
  w.write<std::uint32_t>(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.read<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.read<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeDeathTest, ReadPastEndAborts) {
  ByteWriter w;
  w.write<std::uint16_t>(3);
  EXPECT_DEATH(
      {
        ByteReader r(w.bytes());
        (void)r.read<std::uint64_t>();
      },
      "precondition");
}

TEST(SerializeDeathTest, TruncatedVectorAborts) {
  ByteWriter w;
  w.write<std::uint64_t>(1000);  // claims 1000 floats, provides none
  EXPECT_DEATH(
      {
        ByteReader r(w.bytes());
        (void)r.read_vector<float>();
      },
      "precondition");
}

TEST(SerializeTest, TakeMovesBufferOut) {
  ByteWriter w;
  w.write<std::uint32_t>(5);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(SerializeTest, ExtremeValuesSurvive) {
  ByteWriter w;
  w.write(std::numeric_limits<double>::max());
  w.write(std::numeric_limits<double>::lowest());
  w.write(std::numeric_limits<std::uint64_t>::max());
  ByteReader r(w.bytes());
  EXPECT_DOUBLE_EQ(r.read<double>(), std::numeric_limits<double>::max());
  EXPECT_DOUBLE_EQ(r.read<double>(), std::numeric_limits<double>::lowest());
  EXPECT_EQ(r.read<std::uint64_t>(), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace cellgan::common
