#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace cellgan::common {
namespace {

CliParser make_parser() {
  CliParser cli("test program");
  cli.add_flag("name", "default", "a string flag");
  cli.add_flag("count", "5", "an int flag");
  cli.add_flag("rate", "0.25", "a double flag");
  cli.add_flag("verbose", "false", "a bool flag");
  return cli;
}

TEST(CliTest, DefaultsApplyWithoutArgs) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_EQ(cli.get_int("count"), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 0.25);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(CliTest, SpaceSeparatedValues) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--name", "alice", "--count", "42"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get("name"), "alice");
  EXPECT_EQ(cli.get_int("count"), 42);
}

TEST(CliTest, EqualsSeparatedValues) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--rate=1.5", "--verbose=true"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), 1.5);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliTest, BoolAcceptsManySpellings) {
  for (const char* spelling : {"1", "true", "yes", "on"}) {
    CliParser cli = make_parser();
    const std::string arg = std::string("--verbose=") + spelling;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_TRUE(cli.get_bool("verbose")) << spelling;
  }
}

TEST(CliTest, UnknownFlagFails) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(CliTest, MissingValueFails) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--name"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, BareBooleanFlagMeansTrue) {
  // Flags with a true/false default may stand alone at the end of the line
  // or before another flag; non-boolean flags still require a value.
  {
    CliParser cli = make_parser();
    const char* argv[] = {"prog", "--verbose"};
    ASSERT_TRUE(cli.parse(2, argv));
    EXPECT_TRUE(cli.get_bool("verbose"));
    EXPECT_TRUE(cli.was_set("verbose"));
  }
  {
    CliParser cli = make_parser();
    const char* argv[] = {"prog", "--verbose", "--count", "3"};
    ASSERT_TRUE(cli.parse(4, argv));
    EXPECT_TRUE(cli.get_bool("verbose"));
    EXPECT_EQ(cli.get_int("count"), 3);
  }
  {
    // An explicit value still wins.
    CliParser cli = make_parser();
    const char* argv[] = {"prog", "--verbose", "false"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_FALSE(cli.get_bool("verbose"));
  }
}

TEST(CliTest, HelpReturnsFalse) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, PositionalArgumentRejected) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(CliTest, NegativeNumbersParse) {
  CliParser cli = make_parser();
  const char* argv[] = {"prog", "--count", "-3", "--rate", "-0.5"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("count"), -3);
  EXPECT_DOUBLE_EQ(cli.get_double("rate"), -0.5);
}

TEST(CliDeathTest, DuplicateFlagRegistrationAborts) {
  CliParser cli("dup");
  cli.add_flag("x", "1", "first");
  EXPECT_DEATH(cli.add_flag("x", "2", "second"), "precondition");
}

TEST(CliDeathTest, GetUnregisteredAborts) {
  CliParser cli("none");
  EXPECT_DEATH((void)cli.get("missing"), "precondition");
}

}  // namespace
}  // namespace cellgan::common
