#include "common/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace cellgan::common {
namespace {

TEST(WallTimerTest, ElapsedIsNonNegativeAndGrows) {
  WallTimer timer;
  const double t1 = timer.elapsed_s();
  EXPECT_GE(t1, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(timer.elapsed_s(), t1);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.reset();
  EXPECT_LT(timer.elapsed_s(), 0.005);
}

TEST(VirtualClockTest, StartsAtZero) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(VirtualClockTest, AdvanceAccumulates) {
  VirtualClock clock;
  clock.advance(1.5);
  clock.advance(2.5);
  EXPECT_DOUBLE_EQ(clock.now(), 4.0);
}

TEST(VirtualClockTest, WaitUntilOnlyMovesForward) {
  VirtualClock clock;
  clock.advance(10.0);
  clock.wait_until(5.0);  // in the past: no-op
  EXPECT_DOUBLE_EQ(clock.now(), 10.0);
  clock.wait_until(12.0);
  EXPECT_DOUBLE_EQ(clock.now(), 12.0);
}

TEST(VirtualClockTest, ZeroAdvanceAllowed) {
  VirtualClock clock;
  clock.advance(0.0);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(VirtualClockDeathTest, NegativeAdvanceAborts) {
  VirtualClock clock;
  EXPECT_DEATH(clock.advance(-1.0), "precondition");
}

TEST(VirtualClockTest, CopyTakesSnapshot) {
  VirtualClock a;
  a.advance(3.0);
  VirtualClock b(a);
  a.advance(1.0);
  EXPECT_DOUBLE_EQ(b.now(), 3.0);
  EXPECT_DOUBLE_EQ(a.now(), 4.0);
}

TEST(VirtualClockTest, ConcurrentAdvancesAllLand) {
  VirtualClock clock;
  std::thread t1([&] {
    for (int i = 0; i < 1000; ++i) clock.advance(0.001);
  });
  std::thread t2([&] {
    for (int i = 0; i < 1000; ++i) clock.advance(0.001);
  });
  t1.join();
  t2.join();
  EXPECT_NEAR(clock.now(), 2.0, 1e-9);
}

}  // namespace
}  // namespace cellgan::common
