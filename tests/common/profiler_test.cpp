#include "common/profiler.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cellgan::common {
namespace {

TEST(ProfilerTest, AccumulatesWallAndVirtual) {
  Profiler p;
  p.add("train", 1.0, 2.0);
  p.add("train", 0.5, 1.0);
  const RoutineCost cost = p.cost("train");
  EXPECT_DOUBLE_EQ(cost.wall_s, 1.5);
  EXPECT_DOUBLE_EQ(cost.virtual_s, 3.0);
  EXPECT_EQ(cost.calls, 2u);
}

TEST(ProfilerTest, UnknownBucketIsZero) {
  Profiler p;
  const RoutineCost cost = p.cost("nope");
  EXPECT_DOUBLE_EQ(cost.wall_s, 0.0);
  EXPECT_EQ(cost.calls, 0u);
  EXPECT_FALSE(p.has("nope"));
}

TEST(ProfilerTest, TotalsSumAcrossBuckets) {
  Profiler p;
  p.add("a", 1.0, 10.0);
  p.add("b", 2.0, 20.0);
  EXPECT_DOUBLE_EQ(p.total_wall_s(), 3.0);
  EXPECT_DOUBLE_EQ(p.total_virtual_s(), 30.0);
}

TEST(ProfilerTest, MergeSumsBuckets) {
  Profiler a, b;
  a.add("train", 1.0, 5.0);
  b.add("train", 2.0, 7.0);
  b.add("gather", 0.5, 0.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.cost("train").wall_s, 3.0);
  EXPECT_DOUBLE_EQ(a.cost("train").virtual_s, 12.0);
  EXPECT_DOUBLE_EQ(a.cost("gather").wall_s, 0.5);
  EXPECT_EQ(a.cost("train").calls, 2u);
}

TEST(ProfilerTest, MergedSumsPerLaneInstances) {
  // The parallel trainer's pattern: per-lane profilers (uncontended on the
  // hot path) merged into one run-level report.
  std::vector<Profiler> lanes(3);
  lanes[0].add("train", 1.0, 10.0);
  lanes[1].add("train", 2.0, 20.0);
  lanes[2].add("gather", 0.25, 0.5);
  const Profiler merged = Profiler::merged(lanes);
  EXPECT_DOUBLE_EQ(merged.cost("train").wall_s, 3.0);
  EXPECT_DOUBLE_EQ(merged.cost("train").virtual_s, 30.0);
  EXPECT_EQ(merged.cost("train").calls, 2u);
  EXPECT_DOUBLE_EQ(merged.cost("gather").wall_s, 0.25);
  EXPECT_EQ(merged.cost("gather").calls, 1u);
}

TEST(ProfilerTest, MergedOfEmptySpanIsEmpty) {
  const Profiler merged = Profiler::merged({});
  EXPECT_DOUBLE_EQ(merged.total_wall_s(), 0.0);
  EXPECT_TRUE(merged.names().empty());
}

TEST(ProfilerTest, NamesAreSorted) {
  Profiler p;
  p.add("zeta", 1.0);
  p.add("alpha", 1.0);
  p.add("mid", 1.0);
  const auto names = p.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "mid");
  EXPECT_EQ(names[2], "zeta");
}

TEST(ProfilerTest, ClearEmpties) {
  Profiler p;
  p.add("x", 1.0);
  p.clear();
  EXPECT_FALSE(p.has("x"));
  EXPECT_DOUBLE_EQ(p.total_wall_s(), 0.0);
}

TEST(ProfilerTest, CopySemantics) {
  Profiler a;
  a.add("x", 1.0, 2.0);
  Profiler b(a);
  a.add("x", 1.0, 2.0);
  EXPECT_DOUBLE_EQ(b.cost("x").wall_s, 1.0);
  EXPECT_DOUBLE_EQ(a.cost("x").wall_s, 2.0);
}

TEST(ProfilerTest, ConcurrentAddsAreAllCounted) {
  Profiler p;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p] {
      for (int i = 0; i < kAddsPerThread; ++i) p.add("shared", 0.001, 0.002);
    });
  }
  for (auto& t : threads) t.join();
  const RoutineCost cost = p.cost("shared");
  EXPECT_EQ(cost.calls, static_cast<std::uint64_t>(kThreads * kAddsPerThread));
  EXPECT_NEAR(cost.wall_s, 0.001 * kThreads * kAddsPerThread, 1e-9);
}

TEST(ProfileScopeTest, AddsElapsedOnDestruction) {
  Profiler p;
  {
    ProfileScope scope(p, "scoped");
  }
  EXPECT_TRUE(p.has("scoped"));
  EXPECT_EQ(p.cost("scoped").calls, 1u);
  EXPECT_GE(p.cost("scoped").wall_s, 0.0);
}

TEST(ProfilerDeathTest, NegativeTimeAborts) {
  Profiler p;
  EXPECT_DEATH(p.add("bad", -1.0), "precondition");
}

}  // namespace
}  // namespace cellgan::common
