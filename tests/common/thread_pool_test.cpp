#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cellgan::common {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsEverything) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ZeroElementsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

/// Each index must be visited exactly once for any (threads, n) combination.
class ThreadPoolSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ThreadPoolSweep, EachIndexVisitedExactlyOnce) {
  const auto [threads, n] = GetParam();
  ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThreadPoolSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 8),
                       ::testing::Values<std::size_t>(1, 2, 7, 64, 1000)));

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(50, [&](std::size_t begin, std::size_t end) {
      std::size_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 50u * 49u / 2u);
  }
}

TEST(ThreadPoolTest, WorkSmallerThanPoolStillCorrect) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(GlobalPoolTest, DefaultIsInline) {
  EXPECT_GE(global_pool().size(), 1u);
}

TEST(GlobalPoolTest, ResizeTakesEffect) {
  set_global_pool_threads(2);
  EXPECT_EQ(global_pool().size(), 2u);
  set_global_pool_threads(1);
  EXPECT_EQ(global_pool().size(), 1u);
}

}  // namespace
}  // namespace cellgan::common
