#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace cellgan::common {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  const Rng parent(99);
  Rng f1 = parent.fork(7);
  Rng f2 = parent.fork(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(f1(), f2());
}

TEST(RngTest, SiblingForksAreIndependent) {
  const Rng parent(99);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1() == f2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.fork(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(11);
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_int(n), n);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsAreSane) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.03);
}

TEST(RngTest, LognormalIsPositiveWithUnitMeanParameterization) {
  Rng rng(23);
  const double sigma = 0.1;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormal(-0.5 * sigma * sigma, sigma);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<std::uint32_t> v(100);
  for (std::uint32_t i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  std::vector<std::uint32_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ShuffleOrderIsPinnedForever) {
  // The historical Fisher-Yates order for seed 1234, n = 16 — two consecutive
  // epochs from one stream. This is the ONE shuffle implementation in the
  // system: data::DataLoader::reshuffle and datastore::ShuffleService both
  // delegate here, and every legacy-vs-store data-plane parity guarantee (and
  // every past checkpoint's saved epoch order) assumes these exact values.
  // If this test fails, the change broke replay compatibility — revert it.
  Rng rng(1234);
  std::vector<std::uint32_t> v(16);
  for (std::uint32_t i = 0; i < 16; ++i) v[i] = i;
  rng.shuffle(v);
  const std::vector<std::uint32_t> epoch1{0, 9,  7, 12, 11, 4,  2,  6,
                                          1, 14, 13, 8, 15, 5, 10, 3};
  EXPECT_EQ(v, epoch1);
  for (std::uint32_t i = 0; i < 16; ++i) v[i] = i;
  rng.shuffle(v);
  const std::vector<std::uint32_t> epoch2{10, 1,  7,  5, 6, 3,  13, 15,
                                          8,  14, 12, 2, 0, 11, 4,  9};
  EXPECT_EQ(v, epoch2);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng(41);
  std::vector<std::uint32_t> v(100);
  for (std::uint32_t i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(v);
  int fixed_points = 0;
  for (std::uint32_t i = 0; i < 100; ++i) fixed_points += (v[i] == i) ? 1 : 0;
  EXPECT_LT(fixed_points, 20);
}

/// Property sweep: every seed yields in-range uniforms and valid shuffles.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, BasicInvariantsHoldForSeed) {
  Rng rng(GetParam());
  double prev = -1.0;
  bool all_equal = true;
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    if (i > 0 && u != prev) all_equal = false;
    prev = u;
  }
  EXPECT_FALSE(all_equal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xffffffffULL,
                                           0xdeadbeefcafeULL));

}  // namespace
}  // namespace cellgan::common
