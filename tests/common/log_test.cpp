#include "common/log.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace cellgan::common {
namespace {

/// Restores the global level after each test so suites don't interfere.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::Info;
};

TEST_F(LogTest, LevelIsProcessGlobal) {
  set_log_level(LogLevel::Warn);
  EXPECT_EQ(log_level(), LogLevel::Warn);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
}

TEST_F(LogTest, EmittingBelowThresholdIsSafeNoop) {
  set_log_level(LogLevel::Error);
  // These must filter silently (no crash, no output assertions needed).
  log_line(LogLevel::Debug, "dropped");
  log_line(LogLevel::Info, "dropped");
  log_line(LogLevel::Warn, "dropped");
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  log_line(LogLevel::Error, "dropped even at error");
}

TEST_F(LogTest, StreamLoggerBuildsMessages) {
  set_log_level(LogLevel::Off);  // exercise the path without spamming stderr
  log_info() << "value=" << 42 << " pi=" << 3.14;
  log_warn() << "warn " << std::string("text");
  log_error() << "error";
  log_debug() << "debug";
}

TEST_F(LogTest, ThreadLabelsAreThreadLocal) {
  set_log_level(LogLevel::Off);
  set_thread_log_label("main-thread");
  std::thread t([] {
    set_thread_log_label("worker");
    log_info() << "from worker";
  });
  t.join();
  log_info() << "from main";
  set_thread_log_label("");
}

TEST_F(LogTest, ConcurrentLoggingDoesNotCrash) {
  set_log_level(LogLevel::Off);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      set_thread_log_label("t" + std::to_string(t));
      for (int i = 0; i < 200; ++i) log_info() << "message " << i;
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace cellgan::common
