#include "metrics/classifier.hpp"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.hpp"

namespace cellgan::metrics {
namespace {

TEST(ClassifierTest, UntrainedIsNearChance) {
  common::Rng rng(1);
  Classifier classifier(rng);
  const auto test = data::make_synthetic_mnist(200, 2);
  const double acc = classifier.accuracy(test);
  EXPECT_LT(acc, 0.35);  // 10 classes: chance is 0.1
}

TEST(ClassifierTest, TrainsWellAboveChance) {
  common::Rng rng(3);
  Classifier classifier(rng);
  const auto train = data::make_synthetic_mnist(1000, 4);
  const auto test = data::make_synthetic_mnist(300, 5);
  classifier.train(train, /*epochs=*/6, /*batch_size=*/50, /*learning_rate=*/2e-3,
                   rng);
  const double acc = classifier.accuracy(test);
  EXPECT_GT(acc, 0.6) << "classifier failed to learn the 10 synthetic modes";
}

TEST(ClassifierTest, LossDecreasesWithTraining) {
  common::Rng rng(6);
  Classifier classifier(rng);
  const auto train = data::make_synthetic_mnist(500, 7);
  const float early = classifier.train(train, 1, 50, 1e-3, rng);
  const float later = classifier.train(train, 4, 50, 1e-3, rng);
  EXPECT_LT(later, early);
}

TEST(ClassifierTest, ProbsAreDistributions) {
  common::Rng rng(8);
  Classifier classifier(rng);
  const auto data = data::make_synthetic_mnist(20, 9);
  const tensor::Tensor probs = classifier.predict_probs(data.images);
  EXPECT_EQ(probs.rows(), 20u);
  EXPECT_EQ(probs.cols(), data::kNumClasses);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    float total = 0.0f;
    for (const float p : probs.row_span(r)) {
      EXPECT_GE(p, 0.0f);
      total += p;
    }
    EXPECT_NEAR(total, 1.0f, 1e-4f);
  }
}

TEST(ClassifierTest, FeaturesHaveHiddenDim) {
  common::Rng rng(10);
  Classifier classifier(rng, /*hidden_dim=*/32);
  const auto data = data::make_synthetic_mnist(10, 11);
  const tensor::Tensor features = classifier.features(data.images);
  EXPECT_EQ(features.rows(), 10u);
  EXPECT_EQ(features.cols(), 32u);
  // Tanh features are bounded.
  for (const float v : features.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(ClassifierTest, PredictLabelsMatchesArgmaxOfProbs) {
  common::Rng rng(12);
  Classifier classifier(rng);
  const auto data = data::make_synthetic_mnist(15, 13);
  const auto labels = classifier.predict_labels(data.images);
  const tensor::Tensor probs = classifier.predict_probs(data.images);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    std::size_t best = 0;
    auto row = probs.row_span(i);
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    EXPECT_EQ(labels[i], best);
  }
}

TEST(ClassifierTest, SupportsReducedImageDims) {
  common::Rng rng(14);
  Classifier classifier(rng, 16, /*image_dim=*/64);
  const auto full = data::make_synthetic_mnist(400, 15);
  const auto small = data::downsampled(full, 8);
  classifier.train(small, 8, 20, 2e-3, rng);
  EXPECT_GT(classifier.accuracy(small), 0.2);  // learned something
}

}  // namespace
}  // namespace cellgan::metrics
