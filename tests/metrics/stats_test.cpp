#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace cellgan::metrics {
namespace {

TEST(StatsTest, ColumnMeanKnownValues) {
  tensor::Tensor x(2, 3, {1, 2, 3, 3, 4, 5});
  const tensor::Tensor mu = column_mean(x);
  EXPECT_FLOAT_EQ(mu.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(mu.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(mu.at(0, 2), 4.0f);
}

TEST(StatsTest, CovarianceKnownValues) {
  // Two perfectly correlated columns.
  tensor::Tensor x(3, 2, {0, 0, 1, 1, 2, 2});
  const tensor::Tensor cov = covariance(x);
  EXPECT_NEAR(cov.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(cov.at(0, 1), 1.0f, 1e-5f);
  EXPECT_NEAR(cov.at(1, 1), 1.0f, 1e-5f);
}

TEST(StatsTest, CovarianceIsSymmetricPsd) {
  common::Rng rng(1);
  const tensor::Tensor x = tensor::Tensor::randn(50, 6, rng);
  const tensor::Tensor cov = covariance(x);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE(cov.at(i, i), 0.0f);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(cov.at(i, j), cov.at(j, i), 1e-5f);
    }
  }
  const EigenResult eig = symmetric_eigen(cov);
  for (const double w : eig.eigenvalues) EXPECT_GE(w, -1e-5);
}

TEST(StatsTest, EigenDiagonalMatrix) {
  tensor::Tensor a(3, 3, {3, 0, 0, 0, 1, 0, 0, 0, 2});
  const EigenResult eig = symmetric_eigen(a);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-9);
}

TEST(StatsTest, EigenKnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  tensor::Tensor a(2, 2, {2, 1, 1, 2});
  const EigenResult eig = symmetric_eigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-9);
}

TEST(StatsTest, EigenReconstructsMatrix) {
  common::Rng rng(2);
  const tensor::Tensor x = tensor::Tensor::randn(30, 5, rng);
  const tensor::Tensor a = covariance(x);
  const EigenResult eig = symmetric_eigen(a);
  // A == V diag(w) V^T
  tensor::Tensor scaled = eig.eigenvectors;  // columns scaled by w
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t k = 0; k < 5; ++k) {
      scaled.at(k, i) *= static_cast<float>(eig.eigenvalues[i]);
    }
  }
  const tensor::Tensor rebuilt = tensor::matmul_nt(scaled, eig.eigenvectors);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(rebuilt.data()[i], a.data()[i], 1e-4f);
  }
}

TEST(StatsTest, EigenvectorsAreOrthonormal) {
  common::Rng rng(3);
  const tensor::Tensor a = covariance(tensor::Tensor::randn(40, 4, rng));
  const EigenResult eig = symmetric_eigen(a);
  const tensor::Tensor vtv = tensor::matmul_tn(eig.eigenvectors, eig.eigenvectors);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(vtv.at(i, j), i == j ? 1.0f : 0.0f, 1e-4f);
    }
  }
}

TEST(StatsTest, PsdSqrtSquaresBack) {
  common::Rng rng(4);
  const tensor::Tensor a = covariance(tensor::Tensor::randn(40, 5, rng));
  const tensor::Tensor s = psd_sqrt(a);
  const tensor::Tensor s2 = tensor::matmul(s, s);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(s2.data()[i], a.data()[i], 1e-3f);
  }
}

TEST(StatsTest, PsdSqrtOfIdentityIsIdentity) {
  tensor::Tensor eye(3, 3, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  const tensor::Tensor s = psd_sqrt(eye);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(s.at(i, j), i == j ? 1.0f : 0.0f, 1e-5f);
    }
  }
}

TEST(StatsTest, SquaredDistance) {
  const tensor::Tensor a = tensor::Tensor::row({1, 2, 3});
  const tensor::Tensor b = tensor::Tensor::row({2, 0, 3});
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 1.0 + 4.0 + 0.0);
}

TEST(StatsTest, Trace) {
  tensor::Tensor a(2, 2, {3, 9, 9, 4});
  EXPECT_DOUBLE_EQ(trace(a), 7.0);
}

TEST(StatsDeathTest, CovarianceNeedsTwoSamples) {
  tensor::Tensor x(1, 3);
  EXPECT_DEATH((void)covariance(x), "precondition");
}

}  // namespace
}  // namespace cellgan::metrics
