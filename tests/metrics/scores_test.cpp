#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "data/synthetic_mnist.hpp"
#include "metrics/fid.hpp"
#include "metrics/inception_score.hpp"
#include "metrics/mode_coverage.hpp"

namespace cellgan::metrics {
namespace {

tensor::Tensor one_hot_probs(const std::vector<std::uint32_t>& labels,
                             float confidence) {
  tensor::Tensor probs(labels.size(), data::kNumClasses);
  const float rest = (1.0f - confidence) / (data::kNumClasses - 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t c = 0; c < data::kNumClasses; ++c) {
      probs.at(i, c) = (c == labels[i]) ? confidence : rest;
    }
  }
  return probs;
}

TEST(InceptionScoreTest, ConfidentDiverseIsMaximal) {
  // One perfectly confident sample per class: IS -> num_classes.
  std::vector<std::uint32_t> labels(10);
  for (std::uint32_t i = 0; i < 10; ++i) labels[i] = i;
  const double is = inception_score_from_probs(one_hot_probs(labels, 0.9999f));
  EXPECT_GT(is, 9.0);
  EXPECT_LE(is, 10.0 + 1e-6);
}

TEST(InceptionScoreTest, CollapsedGeneratorScoresOne) {
  // All samples confidently the same class: marginal == posterior, KL = 0.
  std::vector<std::uint32_t> labels(20, 3);
  const double is = inception_score_from_probs(one_hot_probs(labels, 0.9999f));
  EXPECT_NEAR(is, 1.0, 1e-2);
}

TEST(InceptionScoreTest, UniformPosteriorsScoreOne) {
  tensor::Tensor probs(15, data::kNumClasses);
  probs.fill(0.1f);
  EXPECT_NEAR(inception_score_from_probs(probs), 1.0, 1e-6);
}

TEST(InceptionScoreTest, MoreModesScoreHigher) {
  std::vector<std::uint32_t> two_modes(20);
  for (std::size_t i = 0; i < 20; ++i) two_modes[i] = i % 2;
  std::vector<std::uint32_t> five_modes(20);
  for (std::size_t i = 0; i < 20; ++i) five_modes[i] = i % 5;
  const double is2 = inception_score_from_probs(one_hot_probs(two_modes, 0.999f));
  const double is5 = inception_score_from_probs(one_hot_probs(five_modes, 0.999f));
  EXPECT_GT(is5, is2);
  EXPECT_NEAR(is2, 2.0, 0.05);
  EXPECT_NEAR(is5, 5.0, 0.1);
}

TEST(FidTest, IdenticalSetsScoreNearZero) {
  common::Rng rng(1);
  const tensor::Tensor features = tensor::Tensor::randn(200, 8, rng);
  const double fid = fid_from_features(features, features);
  EXPECT_NEAR(fid, 0.0, 1e-2);
}

TEST(FidTest, MeanShiftIncreasesFid) {
  common::Rng rng(2);
  const tensor::Tensor base = tensor::Tensor::randn(300, 6, rng);
  tensor::Tensor small_shift = base;
  tensor::Tensor big_shift = base;
  for (auto& v : small_shift.data()) v += 0.5f;
  for (auto& v : big_shift.data()) v += 2.0f;
  const double fid_small = fid_from_features(base, small_shift);
  const double fid_big = fid_from_features(base, big_shift);
  EXPECT_GT(fid_small, 0.1);
  EXPECT_GT(fid_big, fid_small);
  // Mean-shift-only FID is |shift|^2 * d in expectation.
  EXPECT_NEAR(fid_small, 0.25 * 6, 0.5);
}

TEST(FidTest, CovarianceShrinkIncreasesFid) {
  common::Rng rng(3);
  const tensor::Tensor base = tensor::Tensor::randn(400, 5, rng);
  tensor::Tensor shrunk = base;
  for (auto& v : shrunk.data()) v *= 0.2f;  // mode-collapse-like contraction
  const double fid = fid_from_features(base, shrunk);
  EXPECT_GT(fid, 1.0);
}

TEST(FidTest, SymmetricInArguments) {
  common::Rng rng(4);
  const tensor::Tensor a = tensor::Tensor::randn(200, 4, rng);
  tensor::Tensor b = tensor::Tensor::randn(200, 4, rng, 1.5f);
  const double ab = fid_from_features(a, b);
  const double ba = fid_from_features(b, a);
  EXPECT_NEAR(ab, ba, 0.05 * std::max(1.0, ab));
}

TEST(ModeCoverageTest, BalancedHistogramCoversAll) {
  common::Rng rng(5);
  Classifier classifier(rng);
  const auto train = data::make_synthetic_mnist(800, 6);
  classifier.train(train, 5, 50, 2e-3, rng);
  const auto fresh = data::make_synthetic_mnist(300, 7);
  const ModeReport report = mode_report(classifier, fresh.images);
  EXPECT_GE(report.modes_covered, 7u);  // trained classifier sees most modes
  EXPECT_LT(report.tvd_from_uniform, 0.35);
}

TEST(ModeCoverageTest, SingleClassInputCoversOne) {
  common::Rng rng(8);
  Classifier classifier(rng);
  const auto train = data::make_synthetic_mnist(800, 9);
  classifier.train(train, 5, 50, 2e-3, rng);
  // Build a set of only zeros.
  data::Dataset zeros;
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < train.size(); ++i) {
    if (train.labels[i] == 0) idx.push_back(i);
  }
  zeros.images = tensor::Tensor(idx.size(), data::kImageDim);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    auto src = train.images.row_span(idx[i]);
    std::copy(src.begin(), src.end(), zeros.images.row_span(i).begin());
  }
  const ModeReport report = mode_report(classifier, zeros.images, 0.05);
  EXPECT_LE(report.modes_covered, 3u);
  EXPECT_GT(report.tvd_from_uniform, 0.5);
}

TEST(TotalVariationTest, IdenticalIsZero) {
  EXPECT_DOUBLE_EQ(total_variation({10, 20, 30}, {1, 2, 3}), 0.0);
}

TEST(TotalVariationTest, DisjointIsOne) {
  EXPECT_DOUBLE_EQ(total_variation({10, 0}, {0, 10}), 1.0);
}

TEST(TotalVariationTest, KnownMidpoint) {
  EXPECT_NEAR(total_variation({1, 1}, {1, 3}), 0.25, 1e-12);
}

TEST(TotalVariationDeathTest, MismatchedSizesAbort) {
  EXPECT_DEATH((void)total_variation({1, 2}, {1, 2, 3}), "precondition");
}

// --- degenerate-input hardening: telemetry-path metrics must yield defined
// --- values (or named errors), never NaN/UB ---------------------------------

TEST(InceptionScoreTest, EmptyBatchIsDefined) {
  const tensor::Tensor empty(0, data::kNumClasses);
  EXPECT_DOUBLE_EQ(inception_score_from_probs(empty), 1.0);
}

TEST(InceptionScoreTest, SingleSampleScoresOne) {
  const double is = inception_score_from_probs(one_hot_probs({4}, 0.99f));
  EXPECT_NEAR(is, 1.0, 1e-9);
  EXPECT_FALSE(std::isnan(is));
}

TEST(FidTest, TooFewSamplesIsANamedError) {
  common::Rng rng(11);
  const tensor::Tensor many = tensor::Tensor::randn(50, 4, rng);
  const tensor::Tensor one = tensor::Tensor::randn(1, 4, rng);
  const tensor::Tensor none(0, 4);
  for (const tensor::Tensor* degenerate : {&one, &none}) {
    try {
      (void)fid_from_features(many, *degenerate);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("at least 2 samples"),
                std::string::npos);
    }
    EXPECT_THROW((void)fid_from_features(*degenerate, many),
                 std::invalid_argument);
  }
}

TEST(ModeCoverageTest, EmptyBatchIsDefined) {
  common::Rng rng(12);
  Classifier classifier(rng);
  const tensor::Tensor empty(0, data::kImageDim);
  const ModeReport report = mode_report(classifier, empty);
  EXPECT_EQ(report.modes_covered, 0u);
  EXPECT_EQ(report.class_counts, std::vector<std::size_t>(data::kNumClasses, 0));
  EXPECT_DOUBLE_EQ(report.tvd_from_uniform, 1.0);
  EXPECT_FALSE(std::isnan(report.tvd_from_uniform));
}

TEST(TotalVariationTest, EmptyHistogramsAreDefined) {
  EXPECT_DOUBLE_EQ(total_variation({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(total_variation({0, 0}, {3, 1}), 1.0);
  EXPECT_DOUBLE_EQ(total_variation({3, 1}, {0, 0}), 1.0);
}

}  // namespace
}  // namespace cellgan::metrics
