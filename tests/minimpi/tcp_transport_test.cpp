// Live-socket coverage of the TCP transport: worlds of 2-3 "processes"
// simulated by threads that each own a full distributed-mode Runtime +
// TcpTransport pair connected over loopback. Exercises the rendezvous
// bootstrap, framed p2p and collective traffic, the over-the-wire
// communicator split, stray-frame quarantine and bootstrap failure
// deadlines — all without forking, so the suite runs under ASan.
#include "minimpi/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "common/timer.hpp"
#include "minimpi/comm.hpp"
#include "minimpi/errors.hpp"
#include "minimpi/runtime.hpp"

namespace cellgan::minimpi {
namespace {

/// Run `rank_main` on a world of `world_size` TCP-connected Runtimes, one
/// per thread. Rank 0 binds an ephemeral rendezvous port that the peers
/// learn through a shared future (exactly the launcher's role).
void run_tcp_world(int world_size,
                   const std::function<void(Runtime&, Comm&)>& rank_main) {
  std::promise<std::string> endpoint_promise;
  std::shared_future<std::string> endpoint = endpoint_promise.get_future().share();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    threads.emplace_back([&, rank] {
      TcpTransportOptions options;
      options.world_size = world_size;
      options.rank = rank;
      options.timeout_s = 30.0;
      std::unique_ptr<TcpTransport> transport;
      if (rank == 0) {
        options.rendezvous = "127.0.0.1:0";
        transport = std::make_unique<TcpTransport>(options);
        endpoint_promise.set_value(transport->rendezvous_endpoint());
      } else {
        options.rendezvous = endpoint.get();
        transport = std::make_unique<TcpTransport>(options);
      }
      Runtime runtime(world_size, rank, std::move(transport));
      runtime.run([&](Comm& world) { rank_main(runtime, world); });
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(TcpTransportTest, PointToPointEchoAcrossProcBoundary) {
  run_tcp_world(2, [](Runtime&, Comm& world) {
    if (world.rank() == 0) {
      const std::vector<std::uint8_t> ping = {1, 2, 3, 4};
      world.send(1, 10, ping);
      const Message pong = world.recv(1, 20);
      EXPECT_EQ(pong.payload, (std::vector<std::uint8_t>{4, 3, 2, 1}));
      EXPECT_EQ(pong.source, 1);
    } else {
      Message ping = world.recv(0, 10);
      std::reverse(ping.payload.begin(), ping.payload.end());
      world.send(0, 20, ping.payload);
    }
  });
}

TEST(TcpTransportTest, LargePayloadSurvivesFraming) {
  // Bigger than any single socket write is likely to carry at once, so the
  // receive path has to reassemble partial reads correctly.
  run_tcp_world(2, [](Runtime&, Comm& world) {
    constexpr std::size_t kBytes = 1 << 20;
    if (world.rank() == 0) {
      std::vector<std::uint8_t> blob(kBytes);
      for (std::size_t i = 0; i < blob.size(); ++i) {
        blob[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
      }
      world.send(1, 1, blob);
      const Message ack = world.recv(1, 2);
      EXPECT_EQ(Comm::value_of<std::uint64_t>(ack), 0xACCE55ULL);
    } else {
      const Message blob = world.recv(0, 1);
      ASSERT_EQ(blob.payload.size(), kBytes);
      bool all_match = true;
      for (std::size_t i = 0; i < blob.payload.size(); ++i) {
        all_match &= blob.payload[i] ==
                     static_cast<std::uint8_t>(i * 2654435761u >> 13);
      }
      EXPECT_TRUE(all_match);
      world.send_value<std::uint64_t>(0, 2, 0xACCE55ULL);
    }
  });
}

TEST(TcpTransportTest, CollectivesRunOverTheWire) {
  run_tcp_world(3, [](Runtime&, Comm& world) {
    // barrier, bcast, gather, allgather, allreduce — the whole collective
    // surface the master/slave system uses, across real sockets.
    world.barrier();
    std::vector<std::uint8_t> config = {7, 7, 7};
    if (world.rank() != 0) config.clear();
    world.bcast(config, 0);
    EXPECT_EQ(config, (std::vector<std::uint8_t>{7, 7, 7}));

    const std::uint8_t mine = static_cast<std::uint8_t>(world.rank() + 1);
    const auto gathered = world.gather(std::span(&mine, 1), /*root=*/0);
    if (world.rank() == 0) {
      ASSERT_EQ(gathered.size(), 3u);
      for (int r = 0; r < 3; ++r) {
        ASSERT_EQ(gathered[static_cast<std::size_t>(r)].size(), 1u);
        EXPECT_EQ(gathered[static_cast<std::size_t>(r)][0], r + 1);
      }
    }

    const auto all = world.allgather(std::span(&mine, 1));
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)][0], r + 1);
    }

    EXPECT_EQ(world.allreduce_sum(static_cast<double>(world.rank())), 3.0);
    EXPECT_EQ(world.allreduce_max(static_cast<double>(world.rank())), 2.0);
  });
}

TEST(TcpTransportTest, SplitBuildsConsistentCommunicatorsAcrossProcesses) {
  // The master/slave deployment's exact split sequence: LOCAL excludes rank
  // 0, GLOBAL reorders everyone. Contexts are negotiated over the wire and
  // the derived keys must agree, or the follow-up traffic would strand in
  // pending_frames().
  run_tcp_world(3, [](Runtime& runtime, Comm& world) {
    auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    auto global = world.split(0, -world.rank());  // reversed order by key
    ASSERT_TRUE(global.has_value());
    EXPECT_EQ(global->size(), 3);
    EXPECT_EQ(global->rank(), 2 - world.rank());

    if (world.rank() == 0) {
      EXPECT_FALSE(local.has_value());
    } else {
      ASSERT_TRUE(local.has_value());
      EXPECT_EQ(local->size(), 2);
      EXPECT_EQ(local->rank(), world.rank() - 1);
      // Neighbor exchange on the split communicator.
      const std::uint8_t mine = static_cast<std::uint8_t>(10 + world.rank());
      const auto exchanged = local->allgather(std::span(&mine, 1));
      EXPECT_EQ(exchanged[0][0], 11);
      EXPECT_EQ(exchanged[1][0], 12);
    }
    // Reordered GLOBAL still routes: everyone tells its GLOBAL-rank-0 (world
    // rank 2) its world rank.
    if (global->rank() != 0) {
      global->send_value<std::int32_t>(0, 9, world.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        const Message m = global->recv(kAnySource, 9);
        seen += Comm::value_of<std::int32_t>(m);
      }
      EXPECT_EQ(seen, 0 + 1);  // world ranks 0 and 1
    }
    world.barrier();  // nobody tears the mesh down mid-test
    EXPECT_EQ(runtime.pending_frames(), 0u);
  });
}

TEST(TcpTransportTest, StrayContextFrameIsQuarantined) {
  run_tcp_world(2, [](Runtime& runtime, Comm& world) {
    if (world.rank() == 0) {
      Frame stray;
      stray.context_key = 0xdecafbadULL;  // context that will never exist
      stray.src_rank = 0;
      stray.dst_rank = 0;
      runtime.transport().send(1, std::move(stray));
      world.send(1, 1, {});  // fence: arrives after the stray (same stream)
      world.recv(1, 2);
    } else {
      world.recv(0, 1);
      EXPECT_EQ(runtime.pending_frames(), 1u);
      world.send(0, 2, {});
    }
  });
}

TEST(TcpTransportTest, RecvTimeoutNamesTheSilentPeer) {
  run_tcp_world(2, [](Runtime&, Comm& world) {
    if (world.rank() == 0) {
      // Rank 1 never sends on tag 77: the deadline-aware receive must raise
      // the named error instead of hanging the world.
      EXPECT_THROW(world.recv_timeout(1, 77, 0.1), TimeoutError);
      world.send(1, 78, {});  // release the peer
    } else {
      world.recv(0, 78);
    }
  });
}

TEST(TcpTransportTest, PeerDeathRaisesNamedErrorInsteadOfHanging) {
  // A rank that vanishes (its transport tears down, exactly what SIGKILL
  // looks like from the outside: streams close) must surface on every
  // survivor's pending receive as PeerDeathError — quickly, with the dead
  // rank named, and without aborting the process or burning a long timeout.
  run_tcp_world(3, [](Runtime& runtime, Comm& world) {
    if (world.rank() == 2) return;  // "dies" right after bootstrap
    common::WallTimer detect;
    try {
      (void)world.recv(2, 77);
      FAIL() << "expected PeerDeathError";
    } catch (const PeerDeathError& e) {
      EXPECT_EQ(e.world_rank(), 2);
      EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
    }
    EXPECT_LT(detect.elapsed_s(), 10.0);
    EXPECT_TRUE(runtime.peer_lost(2));
    EXPECT_TRUE(world.peer_lost(2));
    // Sending to a lost peer is a silent drop, not a crash: the error
    // belongs to whoever waits on the reply.
    world.send(2, 99, {});
    // The survivors' own link is untouched.
    const std::vector<std::uint8_t> ping = {1};
    const std::vector<std::uint8_t> pong = {2};
    if (world.rank() == 0) {
      world.send(1, 5, ping);
      EXPECT_EQ(world.recv(1, 6).payload, pong);
    } else {
      EXPECT_EQ(world.recv(0, 5).payload, ping);
      world.send(0, 6, pong);
    }
  });
}

TEST(TcpTransportTest, MessagesDeliveredBeforeDeathStillArrive) {
  // Frames that reached the receiver before the stream was lost always win
  // over the loss report: a peer's dying words are not discarded.
  run_tcp_world(2, [](Runtime&, Comm& world) {
    if (world.rank() == 1) {
      const std::vector<std::uint8_t> last_words = {42};
      world.send(0, 5, last_words);
      return;  // gone immediately after the send
    }
    EXPECT_EQ(world.recv(1, 5).payload, (std::vector<std::uint8_t>{42}));
    EXPECT_THROW((void)world.recv(1, 6), PeerDeathError);
  });
}

TEST(TcpTransportTest, BootstrapTimesOutWithNamedError) {
  // Nothing listens on the rendezvous endpoint: the would-be rank 1 must
  // fail its bootstrap within the deadline, not hang.
  TcpTransportOptions options;
  options.world_size = 2;
  options.rank = 1;
  options.rendezvous = "127.0.0.1:1";  // reserved port; nothing listens
  options.timeout_s = 0.3;
  auto transport = std::make_unique<TcpTransport>(options);
  EXPECT_THROW(
      {
        Runtime runtime(2, 1, std::move(transport));
      },
      BootstrapError);
}

TEST(TcpTransportTest, WorldSizeMismatchIsRejectedAtBootstrap) {
  // Rank 0 expects a world of 2; a peer configured for a world of 3 learns
  // the mismatch from the endpoint table and fails with a named error. That
  // peer registered and then vanished, so rank 0's pending receive names it
  // as PeerDeathError right away — errors with names on both sides, no
  // hang, no deadline burned.
  std::promise<std::string> endpoint_promise;
  auto endpoint = endpoint_promise.get_future().share();
  std::thread rank0([&] {
    TcpTransportOptions options;
    options.world_size = 2;
    options.rank = 0;
    options.rendezvous = "127.0.0.1:0";
    options.timeout_s = 10.0;
    auto transport = std::make_unique<TcpTransport>(options);
    endpoint_promise.set_value(transport->rendezvous_endpoint());
    Runtime runtime(2, 0, std::move(transport));
    Comm world(runtime, 0, 0);
    try {
      (void)world.recv_timeout(1, 1, 0.2);
      FAIL() << "expected PeerDeathError or TimeoutError";
    } catch (const PeerDeathError& e) {
      EXPECT_EQ(e.world_rank(), 1);  // the usual: EOF beats the deadline
    } catch (const TimeoutError&) {
      // Loss not yet reported when the deadline hit: still a named error.
    }
  });
  TcpTransportOptions options;
  options.world_size = 3;  // wrong
  options.rank = 1;
  options.rendezvous = endpoint.get();
  options.timeout_s = 10.0;
  auto transport = std::make_unique<TcpTransport>(options);
  try {
    Runtime runtime(3, 1, std::move(transport));
    FAIL() << "expected BootstrapError";
  } catch (const BootstrapError& e) {
    EXPECT_NE(std::string(e.what()).find("world size"), std::string::npos);
  }
  rank0.join();
}

}  // namespace
}  // namespace cellgan::minimpi
