#include "minimpi/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace cellgan::minimpi {
namespace {

Message make_message(int source, int tag, std::uint8_t payload_byte = 0) {
  Message m;
  m.source = source;
  m.tag = tag;
  m.payload = {payload_byte};
  return m;
}

TEST(MailboxTest, PopReturnsPushedMessage) {
  Mailbox box;
  box.push(make_message(1, 5, 42));
  const Message m = box.pop(1, 5);
  EXPECT_EQ(m.source, 1);
  EXPECT_EQ(m.tag, 5);
  ASSERT_EQ(m.payload.size(), 1u);
  EXPECT_EQ(m.payload[0], 42);
}

TEST(MailboxTest, WildcardSourceMatchesAny) {
  Mailbox box;
  box.push(make_message(3, 7));
  const Message m = box.pop(kAnySource, 7);
  EXPECT_EQ(m.source, 3);
}

TEST(MailboxTest, WildcardTagMatchesAny) {
  Mailbox box;
  box.push(make_message(2, 9));
  const Message m = box.pop(2, kAnyTag);
  EXPECT_EQ(m.tag, 9);
}

TEST(MailboxTest, FifoPerSourceAndTag) {
  Mailbox box;
  box.push(make_message(1, 5, 1));
  box.push(make_message(1, 5, 2));
  box.push(make_message(1, 5, 3));
  EXPECT_EQ(box.pop(1, 5).payload[0], 1);
  EXPECT_EQ(box.pop(1, 5).payload[0], 2);
  EXPECT_EQ(box.pop(1, 5).payload[0], 3);
}

TEST(MailboxTest, FilterSkipsNonMatching) {
  Mailbox box;
  box.push(make_message(1, 5, 10));
  box.push(make_message(2, 5, 20));
  EXPECT_EQ(box.pop(2, 5).payload[0], 20);  // skips the rank-1 message
  EXPECT_EQ(box.pop(1, 5).payload[0], 10);  // still there
}

TEST(MailboxTest, TagsSeparateStreams) {
  Mailbox box;
  box.push(make_message(1, 5, 10));
  box.push(make_message(1, 6, 20));
  EXPECT_EQ(box.pop(1, 6).payload[0], 20);
  EXPECT_EQ(box.pop(1, 5).payload[0], 10);
}

TEST(MailboxTest, TryPopReturnsNulloptWhenEmpty) {
  Mailbox box;
  EXPECT_FALSE(box.try_pop(kAnySource, kAnyTag).has_value());
  box.push(make_message(1, 1));
  EXPECT_TRUE(box.try_pop(kAnySource, kAnyTag).has_value());
  EXPECT_FALSE(box.try_pop(kAnySource, kAnyTag).has_value());
}

TEST(MailboxTest, PopForTimesOut) {
  Mailbox box;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.pop_for(kAnySource, kAnyTag, 0.05).has_value());
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 0.045);
}

TEST(MailboxTest, PopForReturnsEarlyWhenMessageArrives) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push(make_message(1, 1, 5));
  });
  const auto m = box.pop_for(kAnySource, kAnyTag, 2.0);
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 5);
}

TEST(MailboxTest, BlockingPopWaitsForProducer) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push(make_message(4, 2, 9));
  });
  const Message m = box.pop(4, 2);
  producer.join();
  EXPECT_EQ(m.payload[0], 9);
}

TEST(MailboxTest, ProbeDoesNotConsume) {
  Mailbox box;
  box.push(make_message(1, 3));
  EXPECT_TRUE(box.probe(1, 3));
  EXPECT_TRUE(box.probe(kAnySource, kAnyTag));
  EXPECT_FALSE(box.probe(2, 3));
  EXPECT_EQ(box.size(), 1u);
}

TEST(MailboxTest, SizeTracksQueue) {
  Mailbox box;
  EXPECT_EQ(box.size(), 0u);
  box.push(make_message(1, 1));
  box.push(make_message(1, 2));
  EXPECT_EQ(box.size(), 2u);
  (void)box.pop(1, 1);
  EXPECT_EQ(box.size(), 1u);
}

TEST(MailboxTest, ManyProducersAllDelivered) {
  Mailbox box;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        box.push(make_message(p, 1, static_cast<std::uint8_t>(i % 256)));
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(box.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  // Per-source FIFO must hold even under concurrency.
  for (int p = 0; p < kProducers; ++p) {
    int expected = 0;
    while (auto m = box.try_pop(p, 1)) {
      EXPECT_EQ(m->payload[0], static_cast<std::uint8_t>(expected % 256));
      ++expected;
    }
    EXPECT_EQ(expected, kPerProducer);
  }
}

}  // namespace
}  // namespace cellgan::minimpi
