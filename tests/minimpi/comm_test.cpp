#include "minimpi/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "minimpi/runtime.hpp"

namespace cellgan::minimpi {
namespace {

TEST(CommTest, WorldSizeAndRanks) {
  Runtime runtime(4);
  std::atomic<int> rank_sum{0};
  runtime.run([&](Comm& world) {
    EXPECT_EQ(world.size(), 4);
    rank_sum.fetch_add(world.rank());
  });
  EXPECT_EQ(rank_sum.load(), 0 + 1 + 2 + 3);
}

TEST(CommTest, PointToPointDelivers) {
  Runtime runtime(2);
  runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      const std::vector<std::uint8_t> payload{1, 2, 3};
      world.send(1, 7, payload);
    } else {
      const Message m = world.recv(0, 7);
      EXPECT_EQ(m.payload, (std::vector<std::uint8_t>{1, 2, 3}));
      EXPECT_EQ(m.source, 0);
    }
  });
}

TEST(CommTest, SendValueRoundtrip) {
  Runtime runtime(2);
  runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      world.send_value<double>(1, 3, 2.718);
    } else {
      const Message m = world.recv(0, 3);
      EXPECT_DOUBLE_EQ(Comm::value_of<double>(m), 2.718);
    }
  });
}

TEST(CommTest, SelfSendWorks) {
  Runtime runtime(1);
  runtime.run([](Comm& world) {
    world.send_value<int>(0, 1, 99);
    EXPECT_EQ(Comm::value_of<int>(world.recv(0, 1)), 99);
  });
}

TEST(CommTest, NonOvertakingPerSourceAndTag) {
  Runtime runtime(2);
  runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 50; ++i) world.send_value<int>(1, 5, i);
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(Comm::value_of<int>(world.recv(0, 5)), i);
      }
    }
  });
}

TEST(CommTest, TryRecvAndProbe) {
  Runtime runtime(2);
  runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      world.barrier();  // rank 1 checks emptiness first
      world.send_value<int>(1, 9, 1);
      world.barrier();
    } else {
      EXPECT_FALSE(world.probe(0, 9));
      EXPECT_FALSE(world.try_recv(0, 9).has_value());
      world.barrier();
      world.barrier();
      EXPECT_TRUE(world.probe(0, 9));
      EXPECT_TRUE(world.try_recv(0, 9).has_value());
    }
  });
}

TEST(CommTest, RecvForTimesOutWithoutSender) {
  Runtime runtime(2);
  runtime.run([](Comm& world) {
    if (world.rank() == 1) {
      EXPECT_FALSE(world.recv_for(0, 1, 0.02).has_value());
    }
  });
}

TEST(CommTest, SplitByColorPartitionsRanks) {
  Runtime runtime(4);
  runtime.run([](Comm& world) {
    // Evens and odds form separate communicators.
    auto sub = world.split(world.rank() % 2, world.rank());
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->size(), 2);
    // allgather within the split must only see same-parity ranks.
    const std::uint8_t my_parity = static_cast<std::uint8_t>(world.rank() % 2);
    auto all = sub->allgather(std::span<const std::uint8_t>(&my_parity, 1));
    for (const auto& payload : all) {
      ASSERT_EQ(payload.size(), 1u);
      EXPECT_EQ(payload[0], my_parity);
    }
  });
}

TEST(CommTest, SplitNegativeColorExcludes) {
  Runtime runtime(3);
  runtime.run([](Comm& world) {
    auto sub = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    if (world.rank() == 0) {
      EXPECT_FALSE(sub.has_value());
    } else {
      ASSERT_TRUE(sub.has_value());
      EXPECT_EQ(sub->size(), 2);
      EXPECT_EQ(sub->rank(), world.rank() - 1);
    }
  });
}

TEST(CommTest, SplitKeyControlsOrdering) {
  Runtime runtime(3);
  runtime.run([](Comm& world) {
    // Reverse the ordering via descending keys.
    auto sub = world.split(0, -world.rank());
    ASSERT_TRUE(sub.has_value());
    EXPECT_EQ(sub->rank(), world.size() - 1 - world.rank());
  });
}

TEST(CommTest, NestedSplitsWork) {
  Runtime runtime(4);
  runtime.run([](Comm& world) {
    auto half = world.split(world.rank() / 2, world.rank());
    ASSERT_TRUE(half.has_value());
    auto quarter = half->split(half->rank(), 0);
    ASSERT_TRUE(quarter.has_value());
    EXPECT_EQ(quarter->size(), 1);
  });
}

TEST(CommTest, MessagesInDifferentContextsDoNotMix) {
  Runtime runtime(2);
  runtime.run([](Comm& world) {
    auto sub = world.split(0, world.rank());
    ASSERT_TRUE(sub.has_value());
    if (world.rank() == 0) {
      world.send_value<int>(1, 4, 100);  // world context
      sub->send_value<int>(1, 4, 200);   // sub context, same tag
    } else {
      EXPECT_EQ(Comm::value_of<int>(sub->recv(0, 4)), 200);
      EXPECT_EQ(Comm::value_of<int>(world.recv(0, 4)), 100);
    }
  });
}

TEST(RuntimeTest, RunReturnsPerRankResults) {
  Runtime runtime(3);
  const auto results = runtime.run([](Comm& world) {
    world.profiler().add("work", 0.5);
    world.clock().advance(static_cast<double>(world.rank()));
  });
  ASSERT_EQ(results.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(results[r].virtual_time_s, static_cast<double>(r));
    EXPECT_EQ(results[r].profiler.cost("work").calls, 1u);
  }
}

}  // namespace
}  // namespace cellgan::minimpi
