#include "minimpi/cart.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cellgan::minimpi {
namespace {

TEST(CartTest, RowMajorCoords) {
  CartTopology cart(3, 4);
  EXPECT_EQ(cart.size(), 12);
  EXPECT_EQ(cart.coords_of(0), (GridCoord{0, 0}));
  EXPECT_EQ(cart.coords_of(5), (GridCoord{1, 1}));
  EXPECT_EQ(cart.coords_of(11), (GridCoord{2, 3}));
}

TEST(CartTest, RankOfInvertsCoordsOf) {
  CartTopology cart(4, 4);
  for (int r = 0; r < cart.size(); ++r) {
    EXPECT_EQ(cart.rank_of(cart.coords_of(r)), r);
  }
}

TEST(CartTest, WrappingIsToroidal) {
  CartTopology cart(3, 3);
  EXPECT_EQ(cart.rank_of({-1, 0}), cart.rank_of({2, 0}));
  EXPECT_EQ(cart.rank_of({0, -1}), cart.rank_of({0, 2}));
  EXPECT_EQ(cart.rank_of({3, 3}), cart.rank_of({0, 0}));
  EXPECT_EQ(cart.rank_of({-4, -4}), cart.rank_of({2, 2}));
}

TEST(CartTest, DirectionalNeighbors) {
  CartTopology cart(3, 3);
  // Center cell (1,1) = rank 4.
  EXPECT_EQ(cart.north_of(4), 1);
  EXPECT_EQ(cart.south_of(4), 7);
  EXPECT_EQ(cart.west_of(4), 3);
  EXPECT_EQ(cart.east_of(4), 5);
}

TEST(CartTest, CornerWrapsAllDirections) {
  CartTopology cart(3, 3);
  // Corner (0,0) = rank 0.
  EXPECT_EQ(cart.north_of(0), 6);
  EXPECT_EQ(cart.south_of(0), 3);
  EXPECT_EQ(cart.west_of(0), 2);
  EXPECT_EQ(cart.east_of(0), 1);
}

TEST(CartTest, FiveCellNeighborhoodOnBigGrid) {
  CartTopology cart(4, 4);
  const auto hood = cart.neighborhood_of(5);  // (1,1)
  ASSERT_EQ(hood.size(), 5u);
  EXPECT_EQ(hood[0], 5);  // center first
  EXPECT_NE(std::find(hood.begin(), hood.end(), 1), hood.end());   // north
  EXPECT_NE(std::find(hood.begin(), hood.end(), 9), hood.end());   // south
  EXPECT_NE(std::find(hood.begin(), hood.end(), 4), hood.end());   // west
  EXPECT_NE(std::find(hood.begin(), hood.end(), 6), hood.end());   // east
}

TEST(CartTest, TwoByTwoNeighborhoodDeduplicates) {
  // On a 2x2 torus, north == south and west == east: s = 3, not 5.
  CartTopology cart(2, 2);
  const auto hood = cart.neighborhood_of(0);
  EXPECT_EQ(hood.size(), 3u);
  EXPECT_EQ(hood[0], 0);
}

TEST(CartTest, OneByOneNeighborhoodIsSelf) {
  CartTopology cart(1, 1);
  const auto hood = cart.neighborhood_of(0);
  ASSERT_EQ(hood.size(), 1u);
  EXPECT_EQ(hood[0], 0);
}

TEST(CartTest, RowGridNeighborhood) {
  // 1x4 grid: north/south alias to self and are dropped.
  CartTopology cart(1, 4);
  const auto hood = cart.neighborhood_of(1);
  ASSERT_EQ(hood.size(), 3u);
  EXPECT_EQ(hood[0], 1);
  EXPECT_NE(std::find(hood.begin(), hood.end(), 0), hood.end());
  EXPECT_NE(std::find(hood.begin(), hood.end(), 2), hood.end());
}

TEST(CartTest, NeighborhoodSymmetryOnSquareGrids) {
  // Default 5-cell neighborhoods are symmetric: a in hood(b) <=> b in hood(a).
  for (const int side : {3, 4, 5}) {
    CartTopology cart(side, side);
    for (int a = 0; a < cart.size(); ++a) {
      const auto hood_a = cart.neighborhood_of(a);
      for (const int b : hood_a) {
        const auto hood_b = cart.neighborhood_of(b);
        EXPECT_NE(std::find(hood_b.begin(), hood_b.end(), a), hood_b.end())
            << "asymmetry between " << a << " and " << b << " on " << side;
      }
    }
  }
}

TEST(CartDeathTest, InvalidDimsAbort) {
  EXPECT_DEATH(CartTopology(0, 3), "precondition");
}

TEST(CartDeathTest, OutOfRangeRankAborts) {
  CartTopology cart(2, 2);
  EXPECT_DEATH((void)cart.coords_of(4), "precondition");
}

}  // namespace
}  // namespace cellgan::minimpi
