// Virtual-time semantics of the NetModel: sender-side transfer cost,
// latency on arrival, receiver wait-until, and the linear-in-members
// allgather growth the Table III reproduction depends on.
#include <gtest/gtest.h>

#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"

namespace cellgan::minimpi {
namespace {

NetModelConfig test_net(double latency = 0.5, double bandwidth = 100.0) {
  NetModelConfig net;
  net.enabled = true;
  net.latency_s = latency;
  net.bandwidth_Bps = bandwidth;
  return net;
}

TEST(NetModelTest, DisabledCostsNothing) {
  NetModel net;  // default disabled
  EXPECT_DOUBLE_EQ(net.send_cost_s(1000000), 0.0);
  EXPECT_DOUBLE_EQ(net.latency_s(), 0.0);
  EXPECT_DOUBLE_EQ(net.recv_cost_s(1000000), 0.0);
}

TEST(NetModelTest, CostsFollowConfig) {
  NetModelConfig config;
  config.enabled = true;
  config.latency_s = 0.25;
  config.bandwidth_Bps = 200.0;
  config.recv_overhead_s_per_B = 0.01;
  NetModel net(config);
  EXPECT_DOUBLE_EQ(net.send_cost_s(100), 0.5);
  EXPECT_DOUBLE_EQ(net.latency_s(), 0.25);
  EXPECT_DOUBLE_EQ(net.recv_cost_s(10), 0.1);
}

TEST(VirtualTimeTest, SendChargesSenderRecvWaitsForArrival) {
  // 100-byte message at 100 B/s: sender busy 1s; arrival at 1s + 0.5s latency.
  Runtime runtime(2, test_net());
  const auto results = runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::uint8_t> payload(100, 0);
      world.send(1, 1, payload);
      EXPECT_NEAR(world.clock().now(), 1.0, 1e-9);
    } else {
      (void)world.recv(0, 1);
      EXPECT_NEAR(world.clock().now(), 1.5, 1e-9);
    }
  });
  EXPECT_NEAR(results[0].virtual_time_s, 1.0, 1e-9);
  EXPECT_NEAR(results[1].virtual_time_s, 1.5, 1e-9);
}

TEST(VirtualTimeTest, ReceiverAheadDoesNotRewind) {
  Runtime runtime(2, test_net());
  runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      world.send(1, 1, {});
    } else {
      world.clock().advance(100.0);  // receiver is far ahead
      (void)world.recv(0, 1);
      EXPECT_NEAR(world.clock().now(), 100.0, 1e-9);
    }
  });
}

TEST(VirtualTimeTest, ComputeSkewPropagatesThroughBarrier) {
  Runtime runtime(3, test_net(0.5, 1e12));
  const auto results = runtime.run([](Comm& world) {
    world.clock().advance(world.rank() == 2 ? 10.0 : 1.0);
    world.barrier();
    // After the barrier everyone is at least at the straggler's time.
    EXPECT_GE(world.clock().now(), 10.0);
  });
  for (const auto& r : results) EXPECT_GE(r.virtual_time_s, 10.0);
}

TEST(VirtualTimeTest, SelfSendIsFree) {
  Runtime runtime(1, test_net());
  const auto results = runtime.run([](Comm& world) {
    std::vector<std::uint8_t> payload(1000, 0);
    world.send(0, 1, payload);
    (void)world.recv(0, 1);
  });
  EXPECT_NEAR(results[0].virtual_time_s, 0.0, 1e-9);
}

TEST(VirtualTimeTest, RecvOverheadChargesReceiver) {
  NetModelConfig config = test_net(0.0, 1e12);
  config.recv_overhead_s_per_B = 0.01;
  Runtime runtime(2, config);
  runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      std::vector<std::uint8_t> payload(100, 0);
      world.send(1, 1, payload);
    } else {
      (void)world.recv(0, 1);
      EXPECT_NEAR(world.clock().now(), 1.0, 1e-6);  // 100 B * 0.01 s/B
    }
  });
}

/// Allgather sender cost grows linearly with communicator size — the
/// mechanism behind the paper's gather-scaling (Table III derivation).
class AllgatherScaling : public ::testing::TestWithParam<int> {};

TEST_P(AllgatherScaling, SenderCostIsMembersMinusOneTransfers) {
  const int n = GetParam();
  // 1000-byte genome at 1000 B/s -> 1 second per destination; zero latency
  // isolates the bandwidth term.
  Runtime runtime(n, test_net(0.0, 1000.0));
  const auto results = runtime.run([](Comm& world) {
    std::vector<std::uint8_t> genome(1000, 1);
    (void)world.allgather(genome);
  });
  for (const auto& r : results) {
    EXPECT_NEAR(r.virtual_time_s, static_cast<double>(n - 1), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Members, AllgatherScaling, ::testing::Values(2, 4, 9, 16));

TEST(VirtualTimeTest, DisabledNetLeavesClocksAtZero) {
  Runtime runtime(3);  // net model disabled
  const auto results = runtime.run([](Comm& world) {
    std::vector<std::uint8_t> payload(10000, 0);
    (void)world.allgather(payload);
  });
  for (const auto& r : results) EXPECT_DOUBLE_EQ(r.virtual_time_s, 0.0);
}

}  // namespace
}  // namespace cellgan::minimpi
