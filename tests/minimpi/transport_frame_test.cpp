// Wire-format and delivery-validation coverage for the transport seam:
// frame encode/decode round trips, every malformed-frame class (truncated
// header, bad magic, oversized length, wrong context id / destination), the
// deadline-aware mailbox pop, and the InProc path behind the Transport
// interface. Pure in-process — runs under ASan on every tier-1 pass.
#include "minimpi/transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "minimpi/comm.hpp"
#include "minimpi/errors.hpp"
#include "minimpi/mailbox.hpp"
#include "minimpi/runtime.hpp"

namespace cellgan::minimpi {
namespace {

Frame sample_frame() {
  Frame frame;
  frame.context_key = 0x1122334455667788ULL;
  frame.src_rank = 3;
  frame.dst_rank = 1;
  frame.tag = -6;  // internal tags must survive the wire too
  frame.arrival_vt = 12.75;
  frame.payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
  return frame;
}

TEST(TransportFrameTest, HeaderRoundTripsExactly) {
  const Frame frame = sample_frame();
  const auto wire = encode_frame(frame);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + frame.payload.size());

  Frame decoded;
  std::uint64_t payload_len = 0;
  ASSERT_EQ(decode_frame_header(wire, &decoded, &payload_len),
            FrameDecodeStatus::kOk);
  EXPECT_EQ(decoded.context_key, frame.context_key);
  EXPECT_EQ(decoded.src_rank, frame.src_rank);
  EXPECT_EQ(decoded.dst_rank, frame.dst_rank);
  EXPECT_EQ(decoded.tag, frame.tag);
  EXPECT_EQ(decoded.arrival_vt, frame.arrival_vt);
  EXPECT_EQ(payload_len, frame.payload.size());
  EXPECT_TRUE(std::equal(frame.payload.begin(), frame.payload.end(),
                         wire.begin() + static_cast<long>(kFrameHeaderBytes)));
}

TEST(TransportFrameTest, EmptyPayloadRoundTrips) {
  Frame frame;
  frame.tag = 7;
  const auto wire = encode_frame(frame);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes);
  Frame decoded;
  std::uint64_t payload_len = 99;
  ASSERT_EQ(decode_frame_header(wire, &decoded, &payload_len),
            FrameDecodeStatus::kOk);
  EXPECT_EQ(payload_len, 0u);
  EXPECT_EQ(decoded.tag, 7);
}

TEST(TransportFrameTest, TruncatedHeaderNeedsMoreData) {
  const auto wire = encode_frame(sample_frame());
  Frame decoded;
  std::uint64_t payload_len = 0;
  for (std::size_t cut = 0; cut < kFrameHeaderBytes; cut += 7) {
    EXPECT_EQ(decode_frame_header(std::span(wire.data(), cut), &decoded,
                                  &payload_len),
              FrameDecodeStatus::kNeedMore)
        << "with " << cut << " bytes";
  }
}

TEST(TransportFrameTest, BadMagicIsRejected) {
  auto wire = encode_frame(sample_frame());
  wire[0] ^= 0xff;
  Frame decoded;
  std::uint64_t payload_len = 0;
  EXPECT_EQ(decode_frame_header(wire, &decoded, &payload_len),
            FrameDecodeStatus::kBadMagic);
}

TEST(TransportFrameTest, OversizedLengthIsRejected) {
  auto wire = encode_frame(sample_frame());
  // Corrupt the payload-length field (bytes 32..39) to an absurd value.
  for (std::size_t i = 32; i < 40; ++i) wire[i] = 0xff;
  Frame decoded;
  std::uint64_t payload_len = 0;
  EXPECT_EQ(decode_frame_header(wire, &decoded, &payload_len),
            FrameDecodeStatus::kOversized);
}

/// Captures outbound frames instead of moving them anywhere: lets the tests
/// drive a distributed-mode Runtime without sockets or peer processes.
class CapturingTransport final : public Transport {
 public:
  void send(int dst_world_rank, Frame frame) override {
    sent.emplace_back(dst_world_rank, std::move(frame));
  }
  const char* name() const override { return "capture"; }

  std::vector<std::pair<int, Frame>> sent;
};

TEST(TransportFrameTest, DistributedRuntimeRoutesRemoteSendsThroughTransport) {
  auto transport = std::make_unique<CapturingTransport>();
  CapturingTransport* captured = transport.get();
  Runtime runtime(/*world_size=*/3, /*local_rank=*/1, std::move(transport));

  Message message;
  message.source = 1;
  message.tag = 42;
  message.payload = {1, 2, 3};
  runtime.route(/*context_id=*/0, /*dst_local_rank=*/2, std::move(message));
  ASSERT_EQ(captured->sent.size(), 1u);
  EXPECT_EQ(captured->sent[0].first, 2);          // world rank of WORLD rank 2
  EXPECT_EQ(captured->sent[0].second.context_key, 0u);  // WORLD key
  EXPECT_EQ(captured->sent[0].second.tag, 42);
  EXPECT_EQ(captured->sent[0].second.payload.size(), 3u);
}

TEST(TransportFrameTest, WrongContextIdIsQuarantinedNotDelivered) {
  Runtime runtime(/*world_size=*/2, /*local_rank=*/0,
                  std::make_unique<CapturingTransport>());
  Frame stray;
  stray.context_key = 0xbadbadbadULL;  // no such communicator
  stray.src_rank = 1;
  stray.dst_rank = 0;
  runtime.ingest(std::move(stray));
  EXPECT_EQ(runtime.pending_frames(), 1u);
  // A well-addressed WORLD frame still flows normally around the stray.
  Frame good;
  good.context_key = 0;
  good.src_rank = 1;
  good.dst_rank = 0;
  good.tag = 5;
  runtime.ingest(std::move(good));
  EXPECT_TRUE(runtime.context(0).mailboxes[0]->probe(1, 5));
  EXPECT_EQ(runtime.pending_frames(), 1u);
}

TEST(TransportFrameTest, MisaddressedFramesRaiseTransportError) {
  Runtime runtime(/*world_size=*/2, /*local_rank=*/0,
                  std::make_unique<CapturingTransport>());
  Frame out_of_range;
  out_of_range.context_key = 0;
  out_of_range.dst_rank = 9;  // WORLD has 2 members
  EXPECT_THROW(runtime.ingest(std::move(out_of_range)), TransportError);

  Frame wrong_rank;
  wrong_rank.context_key = 0;
  wrong_rank.dst_rank = 1;  // world rank 1 is not hosted by this process
  EXPECT_THROW(runtime.ingest(std::move(wrong_rank)), TransportError);
}

TEST(TransportFrameTest, PopUntilHonorsDeadlineAndDelivery) {
  Mailbox mailbox;
  const auto short_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  EXPECT_FALSE(mailbox.pop_until(0, 1, short_deadline).has_value());

  std::thread producer([&mailbox] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Message message;
    message.source = 0;
    message.tag = 1;
    mailbox.push(std::move(message));
  });
  const auto generous_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  const auto delivered = mailbox.pop_until(0, 1, generous_deadline);
  producer.join();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->tag, 1);
}

TEST(TransportFrameTest, RecvTimeoutIsANamedError) {
  Runtime runtime(/*world_size=*/1);
  runtime.run([](Comm& world) {
    try {
      world.recv_timeout(kAnySource, 3, 0.05);
      FAIL() << "expected TimeoutError";
    } catch (const TimeoutError& e) {
      EXPECT_NE(std::string(e.what()).find("tag=3"), std::string::npos);
    }
  });
}

TEST(TransportFrameTest, InProcSendsStillDeliverBitIdentically) {
  // The refactor contract: with the InProcTransport behind Runtime::route,
  // payloads, sources, tags and arrival stamps reach the destination mailbox
  // exactly as the historical direct push did.
  Runtime runtime(/*world_size=*/2);
  runtime.run([](Comm& world) {
    if (world.rank() == 0) {
      const std::vector<std::uint8_t> payload = {9, 8, 7};
      world.send(1, 11, payload);
    } else {
      const Message m = world.recv(0, 11);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 11);
      EXPECT_EQ(m.arrival_vt, 0.0);  // net model off
      EXPECT_EQ(m.payload, (std::vector<std::uint8_t>{9, 8, 7}));
    }
  });
}

}  // namespace
}  // namespace cellgan::minimpi
