#include <gtest/gtest.h>

#include <atomic>

#include "minimpi/comm.hpp"
#include "minimpi/runtime.hpp"

namespace cellgan::minimpi {
namespace {

/// All collective semantics must hold for any communicator size.
class CollectiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSweep, BarrierSynchronizesAll) {
  const int n = GetParam();
  Runtime runtime(n);
  std::atomic<int> before{0}, after{0};
  runtime.run([&](Comm& world) {
    before.fetch_add(1);
    world.barrier();
    // Everyone must have incremented `before` by the time any rank passes.
    EXPECT_EQ(before.load(), n);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), n);
}

TEST_P(CollectiveSweep, BcastDeliversRootPayload) {
  const int n = GetParam();
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    std::vector<std::uint8_t> data;
    if (world.rank() == 0) data = {9, 8, 7};
    world.bcast(data, 0);
    EXPECT_EQ(data, (std::vector<std::uint8_t>{9, 8, 7}));
  });
}

TEST_P(CollectiveSweep, BcastFromNonZeroRoot) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP();
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    std::vector<std::uint8_t> data;
    if (world.rank() == 1) data = {5};
    world.bcast(data, 1);
    EXPECT_EQ(data, (std::vector<std::uint8_t>{5}));
  });
}

TEST_P(CollectiveSweep, GatherCollectsByRankAtRoot) {
  const int n = GetParam();
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    const std::uint8_t mine = static_cast<std::uint8_t>(world.rank() * 3);
    const auto gathered = world.gather(std::span<const std::uint8_t>(&mine, 1), 0);
    if (world.rank() == 0) {
      ASSERT_EQ(gathered.size(), static_cast<std::size_t>(n));
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(gathered[r].size(), 1u);
        EXPECT_EQ(gathered[r][0], static_cast<std::uint8_t>(r * 3));
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }
  });
}

TEST_P(CollectiveSweep, AllgatherGivesEveryoneEverything) {
  const int n = GetParam();
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    const std::uint8_t mine = static_cast<std::uint8_t>(world.rank() + 1);
    const auto all = world.allgather(std::span<const std::uint8_t>(&mine, 1));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[r].size(), 1u);
      EXPECT_EQ(all[r][0], static_cast<std::uint8_t>(r + 1));
    }
  });
}

TEST_P(CollectiveSweep, AllreduceSumAndMax) {
  const int n = GetParam();
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    const double sum = world.allreduce_sum(static_cast<double>(world.rank() + 1));
    EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2.0);
    const double mx = world.allreduce_max(static_cast<double>(world.rank()));
    EXPECT_DOUBLE_EQ(mx, static_cast<double>(n - 1));
  });
}

TEST_P(CollectiveSweep, BackToBackCollectivesDoNotInterfere) {
  const int n = GetParam();
  Runtime runtime(n);
  runtime.run([&](Comm& world) {
    for (int round = 0; round < 5; ++round) {
      const std::uint8_t mine = static_cast<std::uint8_t>(world.rank() * 10 + round);
      const auto all = world.allgather(std::span<const std::uint8_t>(&mine, 1));
      for (int r = 0; r < n; ++r) {
        ASSERT_EQ(all[r][0], static_cast<std::uint8_t>(r * 10 + round))
            << "round " << round;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 5, 9, 17));

TEST(CollectiveTest, LargePayloadAllgather) {
  Runtime runtime(4);
  runtime.run([](Comm& world) {
    std::vector<std::uint8_t> big(100000,
                                  static_cast<std::uint8_t>(world.rank()));
    const auto all = world.allgather(big);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(all[r].size(), 100000u);
      EXPECT_EQ(all[r][99999], static_cast<std::uint8_t>(r));
    }
  });
}

}  // namespace
}  // namespace cellgan::minimpi
