// cellgan_run — the unified runner: every execution vehicle behind one
// command line, driven entirely by core::RunSpec / core::Session.
//
//   ./cellgan_run --backend sequential --grid 2 --iterations 4
//   ./cellgan_run --backend threads --threads 4 --cost-profile table3
//   ./cellgan_run --backend distributed --dataset idx:/data/mnist
//   ./cellgan_run --spec run.json --result-json result.json
//   ./cellgan_run --eval-every 5 --telemetry run.jsonl
//   ./cellgan_run --list-backends
//
// --dump-spec writes the resolved RunSpec as JSON so any run can be saved
// next to its results and replayed exactly with --spec; --result-json writes
// the unified RunResult (CI archives one per push as a bench artifact).
// --eval-every attaches a metrics::EvaluatorObserver (per-epoch IS / FID /
// mode coverage over the held-out set) and --telemetry streams every
// training event as JSONL — the same observer bus all four backends publish.
#include <cstdio>

#include <exception>
#include <memory>

#include "core/session.hpp"
#include "metrics/evaluator_observer.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 8;

  common::CliParser cli("cellgan_run: unified cellular GAN training runner");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("dump-spec", "", "write the resolved RunSpec JSON to this file");
  cli.add_flag("dry-run", "false", "resolve and print the spec, skip training");
  cli.add_flag("list-backends", "false",
               "print the registered backend names and exit");
  cli.add_flag("list-exchanges", "false",
               "print the registered exchange policy names and exit");
  if (!cli.parse(argc, argv)) return 1;

  if (cli.get_bool("list-backends")) {
    for (const auto& name : core::BackendRegistry::instance().names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (cli.get_bool("list-exchanges")) {
    for (const auto& name : evolve::exchange_policy_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;

  if (!cli.get("dump-spec").empty()) {
    if (spec->save(cli.get("dump-spec"))) {
      std::printf("wrote %s\n", cli.get("dump-spec").c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", cli.get("dump-spec").c_str());
      return 1;
    }
  }
  if (cli.get_bool("dry-run")) {
    std::printf("%s", spec->to_text().c_str());
    return 0;
  }

  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("backend %s: %ux%u grid, %u iterations, %zu training samples\n",
              core::to_string(spec->backend), spec->config.grid_rows,
              spec->config.grid_cols, spec->config.iterations,
              session.train_set().size());

  // Metric evaluation rides the observer bus: IS / FID / mode coverage over
  // the held-out set every --eval-every epochs, on whichever backend runs.
  // (Non-rank-0 TCP ranks never receive the stream, so they skip the
  // evaluator — and its classifier-training cost — entirely.)
  std::unique_ptr<metrics::EvaluatorObserver> evaluator;
  if (spec->observers.eval_every > 0 && core::Session::hosts_observer_stream(*spec)) {
    metrics::EvaluatorOptions options;
    options.eval_every = spec->observers.eval_every;
    options.samples = spec->observers.eval_samples;
    evaluator = std::make_unique<metrics::EvaluatorObserver>(
        session.spec().config, session.test_set(), options);
    session.observers().subscribe(evaluator.get());
  }

  core::RunResult result;
  try {
    result = session.run();
  } catch (const std::exception& e) {
    // Named runtime errors (e.g. minimpi Bootstrap/Timeout/TransportError
    // from the distributed-tcp backend) become a diagnostic, not a terminate.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("wall %.2fs", result.wall_s);
  if (result.virtual_s > 0.0) {
    std::printf(" | virtual %.2f min", result.virtual_s / 60.0);
  }
  if (result.distributed()) {
    std::printf(" | %zu ranks, %llu heartbeat cycles",
                result.ranks.size(),
                static_cast<unsigned long long>(result.heartbeat_cycles));
  }
  std::printf("\n");
  for (std::size_t cell = 0; cell < result.g_fitnesses.size(); ++cell) {
    std::printf("  cell %zu: G loss %.4f | D loss %.4f\n", cell,
                result.g_fitnesses[cell], result.d_fitnesses[cell]);
  }
  if (result.g_fitnesses.empty()) {
    // A non-master rank of a multi-process world: the aggregate lives at
    // rank 0; this process only has its own rank's outcome.
    std::printf("rank done; aggregated results are collected at rank 0\n");
  } else {
    std::printf("best cell: %d (G loss %.4f)\n", result.best_cell,
                result.g_fitnesses[static_cast<std::size_t>(result.best_cell)]);
  }
  if (evaluator != nullptr) {
    for (const auto& snapshot : evaluator->history()) {
      std::printf("  epoch %u: mixture IS %.3f | FID %.3f | modes %zu/10 |"
                  " tvd %.3f\n",
                  snapshot.epoch + 1, snapshot.mixture_is, snapshot.fid,
                  snapshot.modes_covered, snapshot.tvd_from_uniform);
    }
  }
  if (result.metrics.has_value()) {
    std::printf("final metrics (epoch %u): mixture IS %.3f | FID %.3f |"
                " modes %zu/10\n",
                result.metrics->epoch + 1, result.metrics->mixture_is,
                result.metrics->fid, result.metrics->modes_covered);
  }
  return 0;
}
