// cellgan_launch — the local substitute for `mpirun`: fork one OS process
// per world rank (grid cells + 1 master), wire the rendezvous into each
// child through the CELLGAN_RANK / CELLGAN_WORLD / CELLGAN_ENDPOINT
// environment, and run every rank through the Session facade's
// `distributed-tcp` backend (real sockets between real processes).
//
//   ./cellgan_launch --grid 2 --iterations 4                # 5 processes
//   ./cellgan_launch --grid-rows 1 --grid-cols 2 --samples 64  # world of 3
//   ./cellgan_launch ... --verify-parity   # assert rank 0's RunResult JSON
//                                          # matches the in-process
//                                          # `distributed` backend bit for bit
//   ./cellgan_launch ... --recover-dir /tmp/ck --kill-rank 2 --kill-at-epoch 1
//                                          # chaos: rank 2 SIGKILLs itself
//                                          # after epoch 1; the launcher
//                                          # respawns it and the world rolls
//                                          # back to the last common
//                                          # checkpoint and replays — the
//                                          # result must equal an
//                                          # undisturbed run's
//
// Each rank writes <--rank-results>.rank<R>.json; rank 0's file carries the
// aggregated result (fitnesses, best cell, virtual makespan). The same
// backend works across terminals/machines without this launcher: start each
// process by hand with the three CELLGAN_* variables exported (see README
// "Running distributed").
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "minimpi/bootstrap.hpp"

namespace {

using namespace cellgan;

/// Fault-tolerance knobs forwarded to the rank processes through the
/// CELLGAN_* environment (see core/distributed_trainer.hpp).
struct LaunchFaults {
  std::string recover_dir;       ///< "" = recovery off
  int max_restarts = 3;
  int kill_rank = -1;            ///< chaos: which rank kills itself
  long long kill_at_epoch = -1;  ///< chaos: after which absolute epoch
  bool chaos() const { return kill_rank >= 0 && kill_at_epoch >= 0; }
};

/// Child body: become one rank of the world and run it through the Session
/// facade, exactly as a hand-started `cellgan_run --backend distributed-tcp`
/// would. Returns the process exit code.
int run_rank(core::RunSpec spec, int rank, int world_size,
             const std::string& endpoint, const std::string& results_prefix,
             const LaunchFaults& faults, bool doomed) {
  ::setenv(minimpi::kEnvRank, std::to_string(rank).c_str(), 1);
  ::setenv(minimpi::kEnvWorld, std::to_string(world_size).c_str(), 1);
  ::setenv(minimpi::kEnvEndpoint, endpoint.c_str(), 1);
  if (!faults.recover_dir.empty()) {
    ::setenv(core::kEnvRecoverDir, faults.recover_dir.c_str(), 1);
    ::setenv(core::kEnvMaxRestarts,
             std::to_string(faults.max_restarts).c_str(), 1);
  }
  if (doomed) {
    ::setenv(core::kEnvKillAtEpoch,
             std::to_string(faults.kill_at_epoch).c_str(), 1);
  } else {
    // A respawned replacement of the doomed rank must not die again.
    ::unsetenv(core::kEnvKillAtEpoch);
  }
  spec.backend = core::Backend::kDistributedTcp;
  spec.result_json = results_prefix + ".rank" + std::to_string(rank) + ".json";
  if (rank != 0) {
    // Observers ride the master: slaves forward their records to rank 0,
    // which republishes them through the bus. A slave opening the same
    // telemetry path would just clobber rank 0's stream.
    spec.observers.telemetry.clear();
  }
  try {
    core::Session session(std::move(spec));
    if (!session.prepare()) {
      std::fprintf(stderr, "[rank %d] %s\n", rank, session.error().c_str());
      return 2;
    }
    const core::RunResult result = session.run();
    if (rank == 0) {
      std::printf("[rank 0] world of %d done: best cell %d", world_size,
                  result.best_cell);
      if (result.virtual_s > 0.0) {
        std::printf(", virtual %.2f min", result.virtual_s / 60.0);
      }
      std::printf("\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] %s\n", rank, e.what());
    return 3;
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// First `"key": value` line of a RunResult JSON (the result-level keys all
/// appear before the per-routine blocks), value trimmed of the trailing
/// comma. Empty when absent.
std::string extract_value(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto at = json.find(needle);
  if (at == std::string::npos) return "";
  const auto begin = at + needle.size();
  auto end = json.find('\n', begin);
  if (end == std::string::npos) end = json.size();
  std::string value = json.substr(begin, end - begin);
  while (!value.empty() && (value.back() == ',' || value.back() == ' ')) {
    value.pop_back();
  }
  while (!value.empty() && value.front() == ' ') value.erase(value.begin());
  return value;
}

/// Compare the deterministic result fields of two RunResult JSON artifacts.
/// Wall-clock and heartbeat counters legitimately differ run to run; the
/// training outcome and the virtual-time accounting must not.
bool results_match(const std::string& tcp_json, const std::string& inproc_json) {
  static const char* kKeys[] = {"virtual_s",   "virtual_min", "train_flops",
                                "best_cell",   "g_fitnesses", "d_fitnesses",
                                "ranks"};
  bool ok = true;
  for (const char* key : kKeys) {
    const std::string tcp_value = extract_value(tcp_json, key);
    const std::string inproc_value = extract_value(inproc_json, key);
    if (tcp_value.empty() || tcp_value != inproc_value) {
      std::fprintf(stderr, "parity mismatch on \"%s\":\n  tcp:     %s\n"
                   "  inproc:  %s\n", key, tcp_value.c_str(), inproc_value.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 4;
  defaults.backend = core::Backend::kDistributedTcp;

  common::CliParser cli(
      "cellgan_launch: fork one process per rank and train over TCP");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("grid-rows", "0", "grid rows (0 = keep --grid / spec value)");
  cli.add_flag("grid-cols", "0", "grid cols (0 = keep --grid / spec value)");
  cli.add_flag("world", "0", "expected world size (0 = grid cells + 1)");
  cli.add_flag("endpoint", "", "rank 0 rendezvous host:port (default: pick a"
               " free loopback port)");
  cli.add_flag("rank-results", "cellgan_launch",
               "per-rank RunResult JSON prefix (<prefix>.rank<R>.json)");
  cli.add_flag("verify-parity", "false",
               "after the run, execute the in-process distributed backend on"
               " the same spec and require rank 0's result JSON to match");
  cli.add_flag("launch-timeout", "300", "seconds before hung ranks are killed");
  cli.add_flag("recover-dir", "",
               "enable rank-death recovery: rolling per-rank checkpoints live"
               " here and dead ranks are respawned (stale *.rck are wiped at"
               " launch)");
  cli.add_flag("max-restarts", "3",
               "generation restarts / respawns before the launch fails");
  cli.add_flag("kill-rank", "-1",
               "chaos: this slave rank raises SIGKILL on itself (needs"
               " --kill-at-epoch)");
  cli.add_flag("kill-at-epoch", "-1",
               "chaos: the epoch after which --kill-rank dies (checkpoint"
               " already written)");
  if (!cli.parse(argc, argv)) return 1;
  auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;
  if (cli.get_int("grid-rows") > 0) {
    spec->config.grid_rows = static_cast<std::uint32_t>(cli.get_int("grid-rows"));
  }
  if (cli.get_int("grid-cols") > 0) {
    spec->config.grid_cols = static_cast<std::uint32_t>(cli.get_int("grid-cols"));
  }

  const int world_size = static_cast<int>(spec->config.grid_cells()) + 1;
  if (cli.get_int("world") != 0 && cli.get_int("world") != world_size) {
    std::fprintf(stderr, "--world %lld does not match the grid (%u cells + 1"
                 " master = %d ranks)\n", static_cast<long long>(cli.get_int("world")),
                 spec->config.grid_cells(), world_size);
    return 1;
  }
  std::string endpoint = cli.get("endpoint");
  if (endpoint.empty()) endpoint = minimpi::pick_local_endpoint();
  const std::string results_prefix = cli.get("rank-results");

  LaunchFaults faults;
  faults.recover_dir = cli.get("recover-dir");
  faults.max_restarts = static_cast<int>(cli.get_int("max-restarts"));
  faults.kill_rank = static_cast<int>(cli.get_int("kill-rank"));
  faults.kill_at_epoch = cli.get_int("kill-at-epoch");
  if ((faults.kill_rank >= 0) != (faults.kill_at_epoch >= 0)) {
    std::fprintf(stderr,
                 "--kill-rank and --kill-at-epoch must be used together\n");
    return 1;
  }
  if (faults.chaos() &&
      (faults.kill_rank < 1 || faults.kill_rank >= world_size)) {
    std::fprintf(stderr, "--kill-rank %d is not a slave rank (1..%d)\n",
                 faults.kill_rank, world_size - 1);
    return 1;
  }
  if (!faults.recover_dir.empty()) {
    // Fresh recovery state per launch: create the directory and drop rolling
    // checkpoints left behind by an earlier world.
    std::error_code ec;
    std::filesystem::create_directories(faults.recover_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --recover-dir %s: %s\n",
                   faults.recover_dir.c_str(), ec.message().c_str());
      return 1;
    }
    for (const auto& entry :
         std::filesystem::directory_iterator(faults.recover_dir, ec)) {
      if (entry.path().extension() == ".rck") {
        std::error_code ignore;
        std::filesystem::remove(entry.path(), ignore);
      }
    }
  }

  std::printf("launching %d ranks (%ux%u grid + master), rendezvous %s\n",
              world_size, spec->config.grid_rows, spec->config.grid_cols,
              endpoint.c_str());
  std::fflush(stdout);
  std::fflush(stderr);

  // Fork before any thread/pool exists in this process; each child becomes
  // one rank end to end (dataset load, bootstrap, training, result JSON).
  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(world_size));
  for (int rank = 0; rank < world_size; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      for (const pid_t child : children) ::kill(child, SIGKILL);
      return 1;
    }
    if (pid == 0) {
      const bool doomed = faults.chaos() && rank == faults.kill_rank;
      ::_exit(run_rank(*spec, rank, world_size, endpoint, results_prefix,
                       faults, doomed));
    }
    children.push_back(pid);
  }

  // Reap with a deadline so a wedged rank fails the launch instead of
  // hanging it. With recovery enabled, a rank that dies by signal is
  // respawned (without the chaos environment) so it can rejoin the
  // surviving ranks at the rendezvous and roll back with them.
  const double timeout_s = static_cast<double>(cli.get_int("launch-timeout"));
  const auto start = std::chrono::steady_clock::now();
  std::vector<bool> done(children.size(), false);
  int failures = 0;
  int respawns_left = faults.recover_dir.empty() ? 0 : faults.max_restarts;
  std::size_t remaining = children.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (done[i]) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(children[i], &status, WNOHANG);
      if (reaped == children[i]) {
        progressed = true;
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!clean && WIFSIGNALED(status) && respawns_left > 0) {
          --respawns_left;
          std::fprintf(stderr,
                       "rank %zu died (signal %d); respawning (%d respawn%s"
                       " left)\n",
                       i, WTERMSIG(status), respawns_left,
                       respawns_left == 1 ? "" : "s");
          const pid_t replacement = ::fork();
          if (replacement == 0) {
            ::_exit(run_rank(*spec, static_cast<int>(i), world_size, endpoint,
                             results_prefix, faults, /*doomed=*/false));
          }
          if (replacement > 0) {
            children[i] = replacement;
            continue;  // rank i lives again
          }
          std::perror("fork");
        }
        done[i] = true;
        --remaining;
        if (!clean) {
          std::fprintf(stderr, "rank %zu failed (status %d)\n", i,
                       WIFEXITED(status) ? WEXITSTATUS(status) : -1);
          ++failures;
        }
      }
    }
    if (remaining == 0) break;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed > timeout_s) {
      std::fprintf(stderr, "launch timed out after %.0fs; killing %zu ranks\n",
                   timeout_s, remaining);
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (!done[i]) ::kill(children[i], SIGKILL);
      }
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (!done[i]) ::waitpid(children[i], nullptr, 0);
      }
      return 1;
    }
    if (!progressed) ::usleep(20 * 1000);
  }
  if (failures > 0) return 1;

  const std::string rank0_json = results_prefix + ".rank0.json";
  std::printf("all %d ranks exited cleanly; rank 0 result: %s\n", world_size,
              rank0_json.c_str());

  if (!cli.get_bool("verify-parity")) return 0;

  // Reference run: the very same spec through the in-process `distributed`
  // backend (thread-per-rank simulation). Per-rank outcomes must match the
  // multi-process run bit for bit.
  std::printf("verify-parity: running the in-process distributed backend...\n");
  core::RunSpec reference = *spec;
  reference.backend = core::Backend::kDistributed;
  reference.result_json = results_prefix + ".inproc.json";
  // The reference exists for the result JSON only — reopening the same
  // telemetry path would clobber rank 0's stream.
  reference.observers.telemetry.clear();
  core::Session session(reference);
  if (!session.prepare()) {
    std::fprintf(stderr, "reference run: %s\n", session.error().c_str());
    return 1;
  }
  (void)session.run();
  const std::string tcp_json = read_file(rank0_json);
  const std::string inproc_json = read_file(reference.result_json);
  if (tcp_json.empty() || inproc_json.empty()) {
    std::fprintf(stderr, "parity: missing result JSON (%s / %s)\n",
                 rank0_json.c_str(), reference.result_json.c_str());
    return 1;
  }
  if (!results_match(tcp_json, inproc_json)) return 1;
  std::printf("parity OK: distributed-tcp == distributed on virtual time,"
              " fitnesses and best cell\n");
  return 0;
}
