// Full cellular GAN training run — the paper's workload, end to end:
// loads MNIST (real IDX files if --mnist-dir points at them, otherwise the
// synthetic stand-in), trains a toroidal grid in the chosen execution mode,
// evaluates the final mixtures with the inception-score analogue, FID and
// mode coverage, and writes a tile of generated digits as a PGM.
//
//   ./mnist_cellular --grid 3 --iterations 20 --mode sequential
//   ./mnist_cellular --mode distributed --samples 2000
#include <cmath>
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "core/checkpoint.hpp"
#include "core/distributed_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "data/pgm.hpp"
#include "metrics/fid.hpp"
#include "metrics/inception_score.hpp"
#include "metrics/mode_coverage.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("mnist_cellular: full cellular GAN training workload");
  cli.add_flag("mnist-dir", "", "directory with MNIST IDX files (empty: synthetic)");
  cli.add_flag("grid", "2", "grid side");
  cli.add_flag("iterations", "12", "training epochs");
  cli.add_flag("batches-per-iteration", "2", "gradient batches per epoch");
  cli.add_flag("samples", "1200", "synthetic training samples (if no IDX files)");
  cli.add_flag("mode", "sequential", "sequential | distributed");
  cli.add_flag("loss", "heuristic", "heuristic | minimax | lsq | mustangs");
  cli.add_flag("paper-arch", "false", "use the paper's full-size MLPs");
  cli.add_flag("seed", "42", "global seed");
  cli.add_flag("out", "mnist_cellular_samples.pgm", "output sample sheet");
  cli.add_flag("checkpoint", "", "save final grid state to this file");
  cli.add_flag("resume", "", "restore grid state from this checkpoint first");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = static_cast<std::uint32_t>(cli.get_int("grid"));
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  config.batches_per_iteration =
      static_cast<std::uint32_t>(cli.get_int("batches-per-iteration"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (cli.get_bool("paper-arch")) {
    config.arch = nn::GanArch::paper();
    config.batch_size = 100;
  }
  const std::string loss = cli.get("loss");
  config.loss_mode = loss == "minimax"    ? core::LossMode::kMinimax
                     : loss == "lsq"      ? core::LossMode::kLeastSquares
                     : loss == "mustangs" ? core::LossMode::kMustangs
                                          : core::LossMode::kHeuristic;

  const std::size_t n = static_cast<std::size_t>(cli.get_int("samples"));
  auto [train_set, test_set] =
      data::load_mnist_or_synthetic(cli.get("mnist-dir"), n, n / 6, config.seed);
  // Reduced architectures train on area-averaged images; metrics follow suit.
  const bool full_images = config.arch.image_dim == data::kImageDim;
  if (!full_images) {
    const auto side = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(config.arch.image_dim))));
    train_set = data::downsampled(train_set, side);
    test_set = data::downsampled(test_set, side);
  }

  std::printf("training %ux%u grid, %u iterations, %s mode\n", config.grid_rows,
              config.grid_cols, config.iterations, cli.get("mode").c_str());

  double best_g_fitness = 0.0;
  tensor::Tensor samples;
  if (cli.get("mode") == "distributed") {
    const auto outcome = core::run_distributed(config, train_set);
    const auto& best = outcome.master.results[outcome.master.best_cell];
    best_g_fitness = best.center.g_fitness;
    std::printf("distributed: wall %.2fs, best cell %d\n", outcome.wall_s,
                outcome.master.best_cell);
    // Rebuild the winning generator for sampling.
    common::Rng rng(config.seed);
    nn::Sequential generator = nn::make_generator(config.arch, rng);
    generator.load_parameters(best.center.generator_params);
    const tensor::Tensor z = tensor::Tensor::randn(64, config.arch.latent_dim, rng);
    samples = generator.forward(z);
  } else {
    core::SequentialTrainer trainer(config, train_set);
    if (!cli.get("resume").empty()) {
      if (const auto snapshot = core::load_checkpoint(cli.get("resume"))) {
        trainer.restore(*snapshot);
        std::printf("resumed from %s (iteration %u)\n", cli.get("resume").c_str(),
                    snapshot->iteration);
      } else {
        std::fprintf(stderr, "could not load checkpoint %s\n",
                     cli.get("resume").c_str());
        return 1;
      }
    }
    const auto outcome = trainer.run();
    best_g_fitness = outcome.g_fitnesses[outcome.best_cell];
    std::printf("sequential: wall %.2fs, best cell %d\n", outcome.wall_s,
                outcome.best_cell);
    samples = trainer.cell(outcome.best_cell).sample_from_mixture(64);
    if (!cli.get("checkpoint").empty()) {
      if (core::save_checkpoint(cli.get("checkpoint"), trainer.checkpoint())) {
        std::printf("checkpoint written to %s\n", cli.get("checkpoint").c_str());
      }
    }
  }
  std::printf("best generator loss: %.4f\n", best_g_fitness);

  common::Rng metric_rng(config.seed ^ 0x3e7ULL);
  metrics::Classifier classifier(metric_rng, /*hidden_dim=*/64,
                                 config.arch.image_dim);
  classifier.train(train_set, /*epochs=*/3, /*batch_size=*/50,
                   /*learning_rate=*/1e-3, metric_rng);
  std::printf("classifier accuracy on held-out set: %.3f\n",
              classifier.accuracy(test_set));
  std::printf("inception score (analogue): %.3f\n",
              metrics::inception_score(classifier, samples));
  std::printf("FID (analogue): %.3f\n",
              metrics::fid_score(classifier, test_set.images, samples));
  const auto modes = metrics::mode_report(classifier, samples);
  std::printf("modes covered: %zu/10, TVD from uniform: %.3f\n",
              modes.modes_covered, modes.tvd_from_uniform);
  if (full_images &&
      data::write_pgm_grid(cli.get("out"), samples.data(), samples.rows(), 8)) {
    std::printf("wrote %s\n", cli.get("out").c_str());
  }
  return 0;
}
