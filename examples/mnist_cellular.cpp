// Full cellular GAN training run — the paper's workload, end to end, driven
// through the unified core::Session facade: resolves the dataset (real IDX
// files via --dataset idx:<dir>, otherwise the synthetic stand-in), trains a
// toroidal grid on the chosen backend, evaluates the mixtures through the
// observer bus (metrics::EvaluatorObserver — inception-score analogue, FID,
// mode coverage; per-epoch with --eval-every, final epoch by default), and
// writes a tile of generated digits as a PGM.
//
//   ./mnist_cellular --grid 3 --iterations 20 --backend sequential
//   ./mnist_cellular --backend distributed --samples 2000
//   ./mnist_cellular --dataset idx:/data/mnist --paper-arch true
//   ./mnist_cellular --eval-every 5 --telemetry run.jsonl
//       --checkpoint-every 10 --checkpoint-path rolling.ckpt
//
// With a reduced architecture, synthetic glyphs are rendered natively at the
// configured resolution (the repo-wide make_matched_dataset convention —
// this replaced the pre-facade behavior of downsampling 28x28 renders, so
// metric numbers differ from older runs); IDX images are area-averaged down.
#include <cstdio>
#include <memory>
#include <string>

#include "core/session.hpp"
#include "data/pgm.hpp"
#include "metrics/evaluator_observer.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 12;
  defaults.config.batches_per_iteration = 2;
  defaults.dataset.samples = 1200;
  defaults.dataset.seed = defaults.config.seed;

  common::CliParser cli("mnist_cellular: full cellular GAN training workload");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("out", "mnist_cellular_samples.pgm", "output sample sheet");
  cli.add_flag("checkpoint", "", "save final grid state to this file");
  cli.add_flag("resume", "", "restore grid state from this checkpoint first");
  if (!cli.parse(argc, argv)) return 1;
  auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;
  // This example historically drew the synthetic data from the training
  // seed, so multi-seed sweeps vary the data too (unless --dataset pins it).
  if (cli.was_set("seed") && !cli.was_set("dataset")) {
    spec->dataset.seed = spec->config.seed;
  }
  // Always evaluate at least the final epoch (the run's headline numbers);
  // --eval-every N adds the per-epoch trajectory.
  if (spec->observers.eval_every == 0) {
    spec->observers.eval_every = spec->config.iterations;
  }

  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  const auto& config = spec->config;
  std::printf("training %ux%u grid, %u iterations, %s backend\n",
              config.grid_rows, config.grid_cols, config.iterations,
              core::to_string(spec->backend));

  if (!cli.get("resume").empty()) {
    const auto snapshot = core::load_checkpoint(cli.get("resume"));
    if (!snapshot || !session.restore(*snapshot)) {
      std::fprintf(stderr, "could not restore checkpoint %s (missing file or"
                   " distributed backend)\n", cli.get("resume").c_str());
      return 1;
    }
    std::printf("resumed from %s (iteration %u)\n", cli.get("resume").c_str(),
                snapshot->iteration);
  }

  // Metric evaluation rides the observer bus — the same seam telemetry and
  // checkpoint policies use, on every backend (pre-observability this was an
  // inline post-run block that only saw the local process). Non-rank-0 TCP
  // ranks never receive the stream and skip the evaluator entirely.
  std::unique_ptr<metrics::EvaluatorObserver> evaluator;
  if (core::Session::hosts_observer_stream(*spec)) {
    metrics::EvaluatorOptions eval_options;
    eval_options.eval_every = spec->observers.eval_every;
    eval_options.samples = spec->observers.eval_samples;
    evaluator = std::make_unique<metrics::EvaluatorObserver>(
        session.spec().config, session.test_set(), eval_options);
    session.observers().subscribe(evaluator.get());
  }

  const core::RunResult outcome = session.run();
  const double best_g_fitness =
      outcome.g_fitnesses[static_cast<std::size_t>(outcome.best_cell)];
  std::printf("%s: wall %.2fs, best cell %d\n", core::to_string(outcome.backend),
              outcome.wall_s, outcome.best_cell);
  const tensor::Tensor samples = session.sample_best(outcome, 64);
  if (!cli.get("checkpoint").empty() && session.trainer() != nullptr) {
    if (core::save_checkpoint(cli.get("checkpoint"), session.checkpoint())) {
      std::printf("checkpoint written to %s\n", cli.get("checkpoint").c_str());
    }
  }
  std::printf("best generator loss: %.4f\n", best_g_fitness);

  if (evaluator != nullptr) {
    for (const auto& snapshot : evaluator->history()) {
      std::printf("epoch %u: mixture IS %.3f | FID %.3f | modes %zu/10 |"
                  " TVD %.3f\n",
                  snapshot.epoch + 1, snapshot.mixture_is, snapshot.fid,
                  snapshot.modes_covered, snapshot.tvd_from_uniform);
    }
  }
  if (outcome.metrics.has_value()) {
    std::printf("inception score (analogue): %.3f\n", outcome.metrics->mixture_is);
    std::printf("FID (analogue): %.3f\n", outcome.metrics->fid);
    std::printf("modes covered: %zu/10, TVD from uniform: %.3f\n",
                outcome.metrics->modes_covered,
                outcome.metrics->tvd_from_uniform);
  }
  if (config.arch.image_dim == data::kImageDim &&
      data::write_pgm_grid(cli.get("out"), samples.data(), samples.rows(), 8)) {
    std::printf("wrote %s\n", cli.get("out").c_str());
  }
  return 0;
}
