// Higher-dimensional image generation — the paper's closing future-work item
// ("apply our method to train GANs to address the generation of higher
// dimensional images, such as samples from CIFAR and CelebA").
//
// The synthetic digit glyphs are vector shapes, so the data layer renders
// natively at any resolution; this example trains the cellular GAN on
// 32x32 (1024-pixel) images — larger than MNIST's 784 — exercising exactly
// the scaling path the paper proposes: only the architecture configuration
// changes, the training harness is untouched.
#include <cstdio>

#include "common/cli.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"
#include "data/pgm.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("highres_cellular: 32x32 generation (future work)");
  cli.add_flag("side", "32", "image side length (>= 28 exceeds MNIST)");
  cli.add_flag("iterations", "10", "training epochs");
  cli.add_flag("samples", "500", "synthetic training samples");
  cli.add_flag("out", "highres_samples.pgm", "output sample sheet");
  if (!cli.parse(argc, argv)) return 1;

  const auto side = static_cast<std::size_t>(cli.get_int("side"));
  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.arch.latent_dim = 32;
  config.arch.hidden_dim = 96;
  config.arch.image_dim = side * side;
  config.batch_size = 32;
  config.fitness_eval_samples = 32;
  config.grid_rows = config.grid_cols = 2;
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  config.batches_per_iteration = 2;

  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), 11);
  std::printf("training 2x2 grid on %zux%zu images (%zu pixels), %u epochs\n",
              side, side, config.arch.image_dim, config.iterations);
  std::printf("generator parameters: %zu, discriminator: %zu\n",
              config.arch.generator_parameter_count(),
              config.arch.discriminator_parameter_count());

  core::SequentialTrainer trainer(config, dataset);
  const core::TrainOutcome outcome = trainer.run();
  std::printf("done in %.2fs wall; best cell %d (G loss %.4f)\n", outcome.wall_s,
              outcome.best_cell, outcome.g_fitnesses[outcome.best_cell]);

  const tensor::Tensor samples =
      trainer.cell(outcome.best_cell).sample_from_mixture(9);
  std::printf("sample (ASCII, %zux%zu):\n%s", side, side,
              data::ascii_art_sized(samples.row_span(0), side).c_str());
  if (data::write_pgm_grid_sized(cli.get("out"), samples.data(), 9, 3, side)) {
    std::printf("wrote %s\n", cli.get("out").c_str());
  }
  return 0;
}
