// Higher-dimensional image generation — the paper's closing future-work item
// ("apply our method to train GANs to address the generation of higher
// dimensional images, such as samples from CIFAR and CelebA").
//
// The synthetic digit glyphs are vector shapes, so the data layer renders
// natively at any resolution; this example trains the cellular GAN on
// 32x32 (1024-pixel) images — larger than MNIST's 784 — exercising exactly
// the scaling path the paper proposes: only the architecture configuration
// changes; the run goes through the same core::Session facade as every
// other workload (pick --backend threads to use more cores).
#include <cstdio>

#include "core/session.hpp"
#include "data/pgm.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 10;
  defaults.config.batch_size = 32;
  defaults.config.fitness_eval_samples = 32;
  defaults.config.batches_per_iteration = 2;
  defaults.dataset.samples = 500;
  defaults.dataset.seed = 11;

  common::CliParser cli("highres_cellular: 32x32 generation (future work)");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("side", "32", "image side length (>= 28 exceeds MNIST)");
  cli.add_flag("out", "highres_samples.pgm", "output sample sheet");
  if (!cli.parse(argc, argv)) return 1;
  auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;

  const auto side = static_cast<std::size_t>(cli.get_int("side"));
  spec->config.arch.latent_dim = 32;
  spec->config.arch.hidden_dim = 96;
  spec->config.arch.image_dim = side * side;

  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("training %ux%u grid on %zux%zu images (%zu pixels), %u epochs\n",
              spec->config.grid_rows, spec->config.grid_cols, side, side,
              spec->config.arch.image_dim, spec->config.iterations);
  std::printf("generator parameters: %zu, discriminator: %zu\n",
              spec->config.arch.generator_parameter_count(),
              spec->config.arch.discriminator_parameter_count());

  const core::RunResult outcome = session.run();
  std::printf("done in %.2fs wall; best cell %d (G loss %.4f)\n", outcome.wall_s,
              outcome.best_cell,
              outcome.g_fitnesses[static_cast<std::size_t>(outcome.best_cell)]);

  const tensor::Tensor samples = session.sample_best(outcome, 9);
  std::printf("sample (ASCII, %zux%zu):\n%s", side, side,
              data::ascii_art_sized(samples.row_span(0), side).c_str());
  if (data::write_pgm_grid_sized(cli.get("out"), samples.data(), 9, 3, side)) {
    std::printf("wrote %s\n", cli.get("out").c_str());
  }
  return 0;
}
