// Dynamic neighborhood reconfiguration — the capability the paper's new
// grid class adds over the original Lipizzaner implementation ("allows
// modifying the grid and also the structure of neighboring processes
// dynamically ... exploring different patterns for training").
//
// This example trains the same 3x3 grid three ways and compares final
// generator losses:
//   1. static five-cell toroidal neighborhoods (the paper's default),
//   2. a ring topology (each cell sees only east/west neighbors),
//   3. a mid-training rewire: start as a ring, switch to five-cell Moore
//      halfway through — exercising Grid::set_neighbors while training runs.
#include <cstdio>

#include "common/cli.hpp"
#include "core/comm_manager.hpp"
#include "core/config.hpp"
#include "core/grid.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"

namespace {

using namespace cellgan;

/// Train `config.iterations` epochs over `grid`, applying `rewire` (if any)
/// at the given iteration. Returns the best final generator loss.
double train_with_topology(const core::TrainingConfig& config,
                           const data::Dataset& dataset, core::Grid& grid,
                           std::uint32_t rewire_at,
                           void (*rewire)(core::Grid&)) {
  common::Rng master_rng(config.seed);
  core::ExecContext context;  // pure real-time
  core::GenomeStore store(grid.size());
  std::vector<std::unique_ptr<core::CellTrainer>> cells;
  std::vector<std::unique_ptr<core::LocalCommManager>> comms;
  for (int cell = 0; cell < grid.size(); ++cell) {
    cells.push_back(std::make_unique<core::CellTrainer>(
        config, grid, cell, dataset, master_rng.fork(cell), context));
    comms.push_back(
        std::make_unique<core::LocalCommManager>(store, grid, cell, context));
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> inboxes(
      grid.size(), std::vector<std::vector<std::uint8_t>>(grid.size()));
  for (std::uint32_t iter = 0; iter < config.iterations; ++iter) {
    if (rewire != nullptr && iter == rewire_at) {
      rewire(grid);
      std::printf("  [iteration %u] topology rewired\n", iter);
    }
    for (int cell = 0; cell < grid.size(); ++cell) {
      cells[cell]->step(inboxes[cell]);
      comms[cell]->publish(cells[cell]->export_genome());
    }
    store.flip();  // epoch barrier: this epoch's genomes become visible
    for (int cell = 0; cell < grid.size(); ++cell) {
      inboxes[cell] = comms[cell]->collect();
    }
  }
  double best = cells[0]->g_fitness();
  for (auto& cell : cells) best = std::min(best, cell->g_fitness());
  return best;
}

void make_ring(core::Grid& grid) {
  for (int cell = 0; cell < grid.size(); ++cell) {
    const auto coord = grid.coords_of(cell);
    grid.set_neighbors(cell, {grid.cell_of({coord.row, coord.col - 1}),
                              grid.cell_of({coord.row, coord.col + 1})});
  }
}

void make_moore5(core::Grid& grid) { grid.reset_default_neighborhoods(); }

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli("dynamic_topology: neighborhood rewiring during training");
  cli.add_flag("iterations", "10", "training epochs");
  cli.add_flag("samples", "600", "synthetic training samples");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 3;
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), 7);

  std::printf("1) static five-cell toroidal neighborhoods\n");
  core::Grid moore(3, 3);
  const double loss_moore =
      train_with_topology(config, dataset, moore, 0, nullptr);
  std::printf("   best G loss: %.4f\n", loss_moore);

  std::printf("2) static ring neighborhoods (E/W only)\n");
  core::Grid ring(3, 3);
  make_ring(ring);
  const double loss_ring = train_with_topology(config, dataset, ring, 0, nullptr);
  std::printf("   best G loss: %.4f\n", loss_ring);

  std::printf("3) dynamic: ring for the first half, Moore-5 afterwards\n");
  core::Grid dynamic(3, 3);
  make_ring(dynamic);
  const double loss_dynamic = train_with_topology(
      config, dataset, dynamic, config.iterations / 2, make_moore5);
  std::printf("   best G loss: %.4f\n", loss_dynamic);

  std::printf("\nsummary: moore=%.4f ring=%.4f dynamic=%.4f\n", loss_moore,
              loss_ring, loss_dynamic);
  return 0;
}
