// Dynamic neighborhood reconfiguration — the capability the paper's new
// grid class adds over the original Lipizzaner implementation ("allows
// modifying the grid and also the structure of neighboring processes
// dynamically ... exploring different patterns for training").
//
// This example trains the same 3x3 grid three ways and compares final
// generator losses:
//   1. static five-cell toroidal neighborhoods (the paper's default),
//   2. a ring topology (each cell sees only east/west neighbors),
//   3. a mid-training rewire: start as a ring, switch to five-cell Moore
//      halfway through — exercising Grid::set_neighbors while training runs.
#include <cstdio>

#include "core/comm_manager.hpp"
#include "core/grid.hpp"
#include "core/session.hpp"

namespace {

using namespace cellgan;

/// Train `config.iterations` epochs over `grid`, applying `rewire` (if any)
/// at the given iteration. Returns the best final generator loss.
double train_with_topology(const core::TrainingConfig& config,
                           const data::Dataset& dataset, core::Grid& grid,
                           std::uint32_t rewire_at,
                           void (*rewire)(core::Grid&)) {
  common::Rng master_rng(config.seed);
  core::ExecContext context;  // pure real-time
  core::GenomeStore store(grid.size());
  std::vector<std::unique_ptr<core::CellTrainer>> cells;
  std::vector<std::unique_ptr<core::LocalCommManager>> comms;
  for (int cell = 0; cell < grid.size(); ++cell) {
    cells.push_back(std::make_unique<core::CellTrainer>(
        config, grid, cell, dataset, master_rng.fork(cell), context));
    comms.push_back(
        std::make_unique<core::LocalCommManager>(store, grid, cell, context));
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> inboxes(
      grid.size(), std::vector<std::vector<std::uint8_t>>(grid.size()));
  for (std::uint32_t iter = 0; iter < config.iterations; ++iter) {
    if (rewire != nullptr && iter == rewire_at) {
      rewire(grid);
      std::printf("  [iteration %u] topology rewired\n", iter);
    }
    for (int cell = 0; cell < grid.size(); ++cell) {
      cells[cell]->step(inboxes[cell]);
      comms[cell]->publish(cells[cell]->export_genome());
    }
    store.flip();  // epoch barrier: this epoch's genomes become visible
    for (int cell = 0; cell < grid.size(); ++cell) {
      inboxes[cell] = comms[cell]->collect();
    }
  }
  double best = cells[0]->g_fitness();
  for (auto& cell : cells) best = std::min(best, cell->g_fitness());
  return best;
}

void make_ring(core::Grid& grid) {
  for (int cell = 0; cell < grid.size(); ++cell) {
    const auto coord = grid.coords_of(cell);
    grid.set_neighbors(cell, {grid.cell_of({coord.row, coord.col - 1}),
                              grid.cell_of({coord.row, coord.col + 1})});
  }
}

void make_moore5(core::Grid& grid) { grid.reset_default_neighborhoods(); }

}  // namespace

int main(int argc, char** argv) {
  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.grid_rows = defaults.config.grid_cols = 3;
  defaults.config.iterations = 10;
  common::CliParser cli("dynamic_topology: neighborhood rewiring during training");
  core::RunSpec::add_flags(cli, defaults);
  if (!cli.parse(argc, argv)) return 1;
  const auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;

  // The rewiring loop drives Grid/CellTrainer directly (the whole point of
  // the demo), but the flags and the dataset resolution come from the same
  // RunSpec/Session machinery as every other program. Flags that only steer
  // a Session backend have nothing to act on here — say so instead of
  // silently accepting them.
  for (const char* flag : {"backend", "threads", "cost-profile", "result-json"}) {
    if (cli.was_set(flag)) {
      std::fprintf(stderr,
                   "note: --%s is ignored (this demo drives the grid directly)\n",
                   flag);
    }
  }
  const core::TrainingConfig& config = spec->config;
  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  const data::Dataset& dataset = session.train_set();

  const int rows = static_cast<int>(config.grid_rows);
  const int cols = static_cast<int>(config.grid_cols);
  std::printf("1) static five-cell toroidal neighborhoods\n");
  core::Grid moore(rows, cols);
  const double loss_moore =
      train_with_topology(config, dataset, moore, 0, nullptr);
  std::printf("   best G loss: %.4f\n", loss_moore);

  std::printf("2) static ring neighborhoods (E/W only)\n");
  core::Grid ring(rows, cols);
  make_ring(ring);
  const double loss_ring = train_with_topology(config, dataset, ring, 0, nullptr);
  std::printf("   best G loss: %.4f\n", loss_ring);

  std::printf("3) dynamic: ring for the first half, Moore-5 afterwards\n");
  core::Grid dynamic(rows, cols);
  make_ring(dynamic);
  const double loss_dynamic = train_with_topology(
      config, dataset, dynamic, config.iterations / 2, make_moore5);
  std::printf("   best G loss: %.4f\n", loss_dynamic);

  std::printf("\nsummary: moore=%.4f ring=%.4f dynamic=%.4f\n", loss_moore,
              loss_ring, loss_dynamic);
  return 0;
}
