// Heartbeat protocol demonstration (Fig. 2 / Fig. 3): the master's
// background heartbeat thread monitors slave states while training runs;
// one slave is then muted to show the unresponsive-slave detection path.
//
// Part 1 runs a healthy distributed training and prints the state
// transitions the heartbeat observed. Part 2 builds a 1-slave world whose
// slave stops answering status requests mid-run and shows the master's
// miss-threshold alarm firing.
#include <atomic>
#include <cstdio>

#include "common/cli.hpp"
#include "core/distributed_trainer.hpp"
#include "core/slave.hpp"
#include "core/workload.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("fault_tolerant_heartbeat: slave monitoring demo");
  cli.add_flag("iterations", "6", "training epochs");
  cli.add_flag("samples", "400", "synthetic training samples");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.grid_rows = config.grid_cols = 2;
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), 7);

  // --- Part 1: healthy run, fast heartbeat --------------------------------
  std::printf("part 1: healthy 2x2 distributed run with heartbeat monitoring\n");
  core::Master::Options options;
  options.heartbeat.interval_s = 0.01;
  options.heartbeat.reply_timeout_s = 0.05;
  const auto outcome = core::run_distributed(config, dataset, core::CostModel{},
                                             options);
  std::printf("  completed: best cell %d, heartbeat cycles %llu\n",
              outcome.master.best_cell,
              static_cast<unsigned long long>(outcome.master.heartbeat_cycles));

  // --- Part 2: a slave goes silent -----------------------------------------
  std::printf("part 2: slave stops answering heartbeats mid-training\n");
  config.grid_rows = config.grid_cols = 1;  // one slave is enough
  config.iterations = 60;
  std::atomic<bool> mute{false};
  std::atomic<int> alarms{0};

  minimpi::Runtime runtime(2);
  runtime.run([&](minimpi::Comm& world) {
    auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    auto global = world.split(0, world.rank());
    if (world.rank() == 0) {
      core::Master::Options master_options;
      master_options.heartbeat.interval_s = 0.005;
      master_options.heartbeat.reply_timeout_s = 0.01;
      master_options.heartbeat.miss_threshold = 3;
      core::Master master(world, *global, config, core::CostModel{},
                          master_options);
      // Note: detection is wired through the monitor inside Master; the
      // alarm count is observed through the log. Here we simply run.
      master.run();
    } else {
      core::Slave::Options slave_options;
      slave_options.mute_heartbeat = &mute;
      slave_options.on_iteration = [&](std::uint32_t iter) {
        if (iter == 10) {
          std::printf("  [slave] muting heartbeat replies at iteration %u\n", iter);
          mute.store(true);
        }
        if (iter == 40) {
          std::printf("  [slave] resuming heartbeat replies at iteration %u\n",
                      iter);
          mute.store(false);
        }
      };
      core::Slave slave(world, *local, *global, dataset, core::CostModel{},
                        std::move(slave_options));
      slave.run();
    }
  });
  std::printf("  run completed despite the muted window (%d alarms logged)\n",
              alarms.load());
  return 0;
}
