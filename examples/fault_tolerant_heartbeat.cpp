// Heartbeat protocol demonstration (Fig. 2 / Fig. 3): the master's
// background heartbeat thread monitors slave states while training runs;
// one slave is then muted to show the unresponsive-slave detection path.
//
// Part 1 runs a healthy distributed training and prints the state
// transitions the heartbeat observed. Part 2 builds a 1-slave world whose
// slave stops answering status requests mid-run and shows the master's
// miss-threshold alarm firing.
#include <atomic>
#include <cstdio>

#include "core/session.hpp"
#include "core/slave.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 6;
  defaults.dataset.samples = 400;
  defaults.backend = core::Backend::kDistributed;
  const auto spec = core::RunSpec::from_args(
      argc, argv, "fault_tolerant_heartbeat: slave monitoring demo", defaults);
  if (!spec) return 1;
  core::TrainingConfig config = spec->config;

  // --- Part 1: healthy run, fast heartbeat --------------------------------
  std::printf("part 1: healthy 2x2 distributed run with heartbeat monitoring\n");
  core::Master::Options options;
  options.heartbeat.interval_s = 0.01;
  options.heartbeat.reply_timeout_s = 0.05;
  core::Session session(*spec);
  session.set_master_options(options);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  const data::Dataset& dataset = session.train_set();
  const auto outcome = session.run();
  std::printf("  completed: best cell %d, heartbeat cycles %llu\n",
              outcome.best_cell,
              static_cast<unsigned long long>(outcome.heartbeat_cycles));

  // --- Part 2: a slave goes silent -----------------------------------------
  std::printf("part 2: slave stops answering heartbeats mid-training\n");
  config.grid_rows = config.grid_cols = 1;  // one slave is enough
  config.iterations = 60;
  std::atomic<bool> mute{false};
  std::atomic<int> alarms{0};

  minimpi::Runtime runtime(2);
  runtime.run([&](minimpi::Comm& world) {
    auto local = world.split(world.rank() == 0 ? -1 : 0, world.rank());
    auto global = world.split(0, world.rank());
    if (world.rank() == 0) {
      core::Master::Options master_options;
      master_options.heartbeat.interval_s = 0.005;
      master_options.heartbeat.reply_timeout_s = 0.01;
      master_options.heartbeat.miss_threshold = 3;
      // Worst case of this demo: a slave that never resumes. The
      // deadline-aware receive turns that from an infinite hang into a named
      // minimpi::TimeoutError identifying the awaited Finished report.
      master_options.slave_timeout_s = 120.0;
      core::Master master(world, *global, config, core::CostModel{},
                          master_options);
      // Note: detection is wired through the monitor inside Master; the
      // alarm count is observed through the log. Here we simply run.
      master.run();
    } else {
      core::Slave::Options slave_options;
      slave_options.mute_heartbeat = &mute;
      slave_options.on_iteration = [&](std::uint32_t iter) {
        if (iter == 10) {
          std::printf("  [slave] muting heartbeat replies at iteration %u\n", iter);
          mute.store(true);
        }
        if (iter == 40) {
          std::printf("  [slave] resuming heartbeat replies at iteration %u\n",
                      iter);
          mute.store(false);
        }
      };
      core::Slave slave(world, *local, *global, dataset, core::CostModel{},
                        std::move(slave_options));
      slave.run();
    }
  });
  std::printf("  run completed despite the muted window (%d alarms logged)\n",
              alarms.load());
  return 0;
}
