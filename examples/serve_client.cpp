// cellgan_client — load generator / CLI client for cellgan_serve: drives
// open-loop load at a fixed offered QPS and reports the latency
// distribution, and can fetch server stats or request a drain-first
// shutdown.
#include <cstdio>

#include "common/cli.hpp"
#include "serve/client.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("cellgan_client: open-loop load generator for cellgan_serve");
  cli.add_flag("connect", "127.0.0.1:0", "server endpoint (host:port)");
  cli.add_flag("qps", "50", "offered request rate");
  cli.add_flag("duration-s", "2", "send window seconds");
  cli.add_flag("count", "16", "samples per request");
  cli.add_flag("seed", "1", "seed base (request i uses seed+i)");
  cli.add_flag("timeout-s", "30", "per-response wait bound");
  cli.add_flag("json", "", "write the LoadReport JSON here ('-' = stdout only)");
  cli.add_flag("stats", "false", "fetch server stats after the run");
  cli.add_flag("shutdown", "false", "request server shutdown after the run");
  cli.add_flag("load", "true", "run the load loop (false: stats/shutdown only)");
  if (!cli.parse(argc, argv)) return 1;

  std::string error;
  const auto endpoint = minimpi::Endpoint::parse(cli.get("connect"), &error);
  if (!endpoint) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  serve::ServeClient client;
  if (!client.connect(*endpoint, 10.0, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  int exit_code = 0;
  if (cli.get_bool("load")) {
    serve::LoadOptions load;
    load.qps = cli.get_double("qps");
    load.duration_s = cli.get_double("duration-s");
    load.count = static_cast<std::uint32_t>(cli.get_int("count"));
    load.seed_base = static_cast<std::uint64_t>(cli.get_int("seed"));
    load.timeout_s = cli.get_double("timeout-s");
    const auto report = serve::run_open_loop(client, load);
    std::printf("%s\n", report.to_json().c_str());
    if (!cli.get("json").empty() && cli.get("json") != "-") {
      if (std::FILE* f = std::fopen(cli.get("json").c_str(), "w")) {
        const auto json = report.to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", cli.get("json").c_str());
        exit_code = 1;
      }
    }
    if (report.completed == 0) exit_code = 1;
  }

  if (cli.get_bool("stats")) {
    serve::StatsResponse stats;
    if (client.stats(&stats, 10.0)) {
      std::printf(
          "server stats: %llu requests, %llu samples, %llu batches, "
          "%llu hits, %llu misses, %llu evictions, %llu rejected, "
          "uptime %.1fs\n",
          static_cast<unsigned long long>(stats.requests),
          static_cast<unsigned long long>(stats.samples),
          static_cast<unsigned long long>(stats.batches),
          static_cast<unsigned long long>(stats.cache_hits),
          static_cast<unsigned long long>(stats.cache_misses),
          static_cast<unsigned long long>(stats.cache_evictions),
          static_cast<unsigned long long>(stats.rejected), stats.uptime_s);
    } else {
      std::fprintf(stderr, "error: stats request failed\n");
      exit_code = 1;
    }
  }

  if (cli.get_bool("shutdown")) {
    if (client.shutdown_server(10.0)) {
      std::printf("server acknowledged shutdown\n");
    } else {
      std::fprintf(stderr, "error: shutdown request not acknowledged\n");
      exit_code = 1;
    }
  }

  client.close();
  return exit_code;
}
