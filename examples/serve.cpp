// cellgan_serve — the serving daemon: restore a trained mixture from a
// checkpoint file and answer framed-TCP sample requests, micro-batched (see
// src/serve/server.hpp). Prints the bound endpoint on stdout so scripts can
// parse it when listening on an ephemeral port.
//
// Shutdown is drain-first from either direction: a client SHUTDOWN frame or
// SIGINT/SIGTERM both end the main loop, which then drains in-flight
// batches — every accepted request is answered — before the sockets close.
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "core/observer.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("cellgan_serve: serve mixture samples from a checkpoint");
  cli.add_flag("checkpoint", "", "checkpoint file to serve (required)");
  cli.add_flag("listen", "127.0.0.1:0", "host:port to bind (port 0 = ephemeral)");
  cli.add_flag("max-batch", "8", "micro-batch: close a batch at this many requests");
  cli.add_flag("max-delay-us", "2000", "micro-batch: or this long after the first");
  cli.add_flag("cache", "4", "warm model cache capacity (checkpoints)");
  cli.add_flag("max-count", "4096", "largest per-request sample count");
  cli.add_flag("telemetry", "", "append serve_request/serve_batch JSONL here");
  if (!cli.parse(argc, argv)) return 1;

  serve::ServerOptions options;
  options.checkpoint = cli.get("checkpoint");
  options.listen = cli.get("listen");
  options.batch.max_batch = static_cast<std::size_t>(cli.get_int("max-batch"));
  options.batch.max_delay_us =
      static_cast<std::uint32_t>(cli.get_int("max-delay-us"));
  options.cache_capacity = static_cast<std::size_t>(cli.get_int("cache"));
  options.max_samples_per_request =
      static_cast<std::uint32_t>(cli.get_int("max-count"));
  if (options.checkpoint.empty()) {
    std::fprintf(stderr, "error: --checkpoint is required\n");
    return 1;
  }

  core::EventBus bus;
  std::unique_ptr<core::JsonlTelemetrySink> sink;
  if (!cli.get("telemetry").empty()) {
    sink = std::make_unique<core::JsonlTelemetrySink>(cli.get("telemetry"));
    if (!sink->ok()) return 1;
    bus.subscribe(sink.get());
  }

  serve::Server server(options, sink ? &bus : nullptr);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  struct sigaction action{};
  action.sa_handler = handle_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  const auto endpoint = server.endpoint();
  std::printf("cellgan_serve listening on %s\n", endpoint.to_string().c_str());
  std::fflush(stdout);

  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("cellgan_serve draining (%s)...\n",
              g_signal != 0 ? "signal" : "shutdown frame");
  std::fflush(stdout);
  server.drain_and_stop();

  const auto stats = server.observer().stats();
  std::printf(
      "cellgan_serve done: %llu requests, %llu samples, %llu batches, "
      "%llu cache hits, %llu misses, %llu rejected\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.samples),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(server.cache().hits()),
      static_cast<unsigned long long>(server.cache().misses()),
      static_cast<unsigned long long>(server.rejected()));
  return 0;
}
