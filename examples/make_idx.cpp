// make_idx: emit an MNIST-shaped IDX file quartet (train + t10k images and
// labels) so every IDX consumer — `cellgan_run --dataset idx:DIR`, the
// mmap-backed SampleStore, the data-plane bench — can run in environments
// where the real MNIST download is unavailable. Pixels come from the
// synthetic MNIST stand-in generator, quantized to bytes exactly the way
// data::load_idx_pair de-quantizes them, so a round trip through these files
// is bit-identical to an in-memory synthetic dataset.
//
//   ./make_idx --out DIR [--train 2000] [--test 400] [--seed 5]
#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/cli.hpp"
#include "data/dataset.hpp"
#include "data/idx.hpp"
#include "data/synthetic_mnist.hpp"

namespace {

using namespace cellgan;

bool write_split(const std::string& dir, const char* images_name,
                 const char* labels_name, std::size_t n, std::uint64_t seed) {
  const data::Dataset set = data::make_synthetic_mnist(n, seed);
  data::IdxImages images;
  images.count = static_cast<std::uint32_t>(n);
  images.rows = data::kImageSide;
  images.cols = data::kImageSide;
  images.pixels.resize(n * data::kImageDim);
  const auto floats = set.images.data();
  for (std::size_t i = 0; i < floats.size(); ++i) {
    // Inverse of the loader's (byte / 127.5 - 1): clamp then round-to-nearest
    // keeps the float -> byte -> float round trip exact for generated values.
    const float v = (floats[i] + 1.0f) * 127.5f;
    images.pixels[i] = static_cast<std::uint8_t>(
        v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v));
  }
  std::vector<std::uint8_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<std::uint8_t>(set.labels[i]);
  }
  const std::string images_path = dir + "/" + images_name;
  const std::string labels_path = dir + "/" + labels_name;
  if (!data::write_idx_images(images_path, images) ||
      !data::write_idx_labels(labels_path, labels)) {
    std::fprintf(stderr, "make_idx: cannot write %s\n", images_path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu images) + %s\n", images_path.c_str(), n,
              labels_path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliParser cli(
      "make_idx: generate an MNIST-shaped IDX quartet from the synthetic "
      "stand-in (for containers without the real MNIST files)");
  cli.add_flag("out", "idx_data", "output directory for the four IDX files");
  cli.add_flag("train", "2000", "training split size");
  cli.add_flag("test", "400", "test split size");
  cli.add_flag("seed", "5", "generator seed (test split uses seed+1)");
  if (!cli.parse(argc, argv)) return 1;

  const std::string dir = cli.get("out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "make_idx: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  if (!write_split(dir, "train-images-idx3-ubyte", "train-labels-idx1-ubyte",
                   static_cast<std::size_t>(cli.get_int("train")), seed) ||
      !write_split(dir, "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte",
                   static_cast<std::size_t>(cli.get_int("test")), seed + 1)) {
    return 1;
  }
  return 0;
}
