// Quickstart: train a 2x2 cellular GAN grid on the synthetic MNIST stand-in
// through the unified core::Session facade, then print the per-cell losses
// and an ASCII sample from the best cell's mixture.
//
//   ./quickstart [--iterations N] [--grid 2] [--samples 600] [--threads T]
//                [--backend sequential|threads|distributed]
//
// Runs in well under a minute on a laptop: the example uses the tiny network
// architecture; switch to --paper-arch to train the paper's full MLPs.
// --threads T > 1 selects the ThreadPool-backed threads backend (same
// results, bit for bit — cells keep private rng streams and exchange through
// the epoch-staged genome store). --distributed additionally replays the run
// on the master/slave backend.
#include <cstdio>

#include "core/session.hpp"
#include "data/pgm.hpp"
#include "tensor/ops.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.iterations = 8;
  defaults.threads = 1;

  common::CliParser cli("quickstart: minimal cellular GAN training run");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("distributed", "true", "also run the master/slave version");
  if (!cli.parse(argc, argv)) return 1;
  auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;
  // Convenience: `--threads T > 1` without an explicit backend means "run the
  // in-process grid on T worker lanes".
  if (spec->threads > 1 && !cli.was_set("backend")) {
    spec->backend = core::Backend::kThreads;
  }

  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("dataset: %zu samples, %zu pixels each\n",
              session.train_set().size(),
              static_cast<std::size_t>(session.train_set().images.cols()));

  // --- cellular training through the facade --------------------------------
  const core::RunResult outcome = session.run();
  std::printf("\n%s run: %.2fs wall\n", core::to_string(outcome.backend),
              outcome.wall_s);
  core::InProcessTrainer* trainer = session.trainer();
  for (std::size_t cell = 0; cell < outcome.g_fitnesses.size(); ++cell) {
    std::printf("  cell %zu: G loss %.4f | D loss %.4f", cell,
                outcome.g_fitnesses[cell], outcome.d_fitnesses[cell]);
    if (trainer != nullptr) {
      std::printf(" | G lr %.6f",
                  trainer->cell(static_cast<int>(cell)).g_learning_rate());
    }
    std::printf("\n");
  }
  std::printf("best cell: %d\n", outcome.best_cell);

  // --- the same training, distributed over master + one slave per cell -----
  if (cli.get_bool("distributed") &&
      spec->backend != core::Backend::kDistributed) {
    core::RunSpec dist_spec = *spec;
    dist_spec.backend = core::Backend::kDistributed;
    dist_spec.result_json.clear();  // --result-json describes the main run
    core::Session dist_session(dist_spec);
    dist_session.set_datasets(session.train_set(), session.test_set());
    const core::RunResult dist = dist_session.run();
    std::printf("\ndistributed run: %.2fs wall, %zu slaves + master\n",
                dist.wall_s, dist.cell_results.size());
    std::printf("  best cell %d (G loss %.4f), heartbeat cycles %llu\n",
                dist.best_cell,
                dist.g_fitnesses[static_cast<std::size_t>(dist.best_cell)],
                static_cast<unsigned long long>(dist.heartbeat_cycles));
  }

  // --- sample from the best cell's neighborhood mixture ---------------------
  const tensor::Tensor samples = session.sample_best(outcome, 4);
  if (spec->config.arch.image_dim == data::kImageDim) {
    std::printf("\nmixture sample from best cell (28x28 ASCII):\n%s\n",
                data::ascii_art(samples.row_span(0)).c_str());
    if (data::write_pgm_grid("quickstart_samples.pgm", samples.data(), 4, 2)) {
      std::printf("wrote quickstart_samples.pgm\n");
    }
  } else {
    std::printf("\nmixture sample mean intensity: %.3f (use --paper-arch for "
                "viewable 28x28 output)\n",
                tensor::mean(samples));
  }
  return 0;
}
