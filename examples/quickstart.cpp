// Quickstart: train a 2x2 cellular GAN grid on the synthetic MNIST stand-in
// with both execution modes, then print the per-cell losses and an ASCII
// sample from the best cell's mixture.
//
//   ./quickstart [--iterations N] [--grid 2] [--samples 4] [--threads T]
//
// Runs in well under a minute on a laptop: the example uses the tiny network
// architecture; switch to --paper-arch to train the paper's full MLPs.
// --threads T > 1 swaps the in-process trainer for the ThreadPool-backed
// ParallelTrainer (same results, bit for bit — cells keep private rng
// streams and exchange through the epoch-staged genome store).
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "core/distributed_trainer.hpp"
#include "core/parallel_trainer.hpp"
#include "core/sequential_trainer.hpp"
#include "core/workload.hpp"
#include "data/pgm.hpp"
#include "tensor/ops.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("quickstart: minimal cellular GAN training run");
  cli.add_flag("iterations", "8", "training epochs");
  cli.add_flag("grid", "2", "grid side (grid x grid cells)");
  cli.add_flag("samples", "600", "synthetic training samples");
  cli.add_flag("paper-arch", "false", "use the paper's full-size MLPs");
  cli.add_flag("threads", "1",
               "worker threads for the in-process trainer (>1 = parallel)");
  cli.add_flag("distributed", "true", "also run the master/slave version");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  config.grid_rows = config.grid_cols = static_cast<std::uint32_t>(cli.get_int("grid"));
  if (cli.get_bool("paper-arch")) {
    config.arch = nn::GanArch::paper();
    config.batch_size = 100;
  }

  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), /*seed=*/7);
  std::printf("dataset: %zu samples, %zu pixels each\n", dataset.size(),
              static_cast<std::size_t>(dataset.images.cols()));

  // --- in-process cellular training (the paper's baseline; --threads > 1
  // steps the cells concurrently on a thread pool) --------------------------
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  std::unique_ptr<core::InProcessTrainer> trainer_ptr;
  if (threads > 1) {
    trainer_ptr = std::make_unique<core::ParallelTrainer>(config, dataset, threads);
  } else {
    trainer_ptr = std::make_unique<core::SequentialTrainer>(config, dataset);
  }
  core::InProcessTrainer& trainer = *trainer_ptr;
  const core::TrainOutcome outcome = trainer.run();
  std::printf("\n%s run: %.2fs wall\n",
              threads > 1 ? "multithread" : "single-core", outcome.wall_s);
  for (int cell = 0; cell < trainer.cells(); ++cell) {
    const auto coord = trainer.grid().coords_of(cell);
    std::printf("  cell (%d,%d): G loss %.4f | D loss %.4f | G lr %.6f\n",
                coord.row, coord.col, outcome.g_fitnesses[cell],
                outcome.d_fitnesses[cell], trainer.cell(cell).g_learning_rate());
  }
  std::printf("best cell: %d\n", outcome.best_cell);

  // --- the same training, distributed over master + one slave per cell -----
  if (cli.get_bool("distributed")) {
    const core::DistributedOutcome dist = core::run_distributed(config, dataset);
    std::printf("\ndistributed run: %.2fs wall, %d slaves + master\n", dist.wall_s,
                static_cast<int>(dist.master.results.size()));
    std::printf("  best cell %d (G loss %.4f), heartbeat cycles %llu\n",
                dist.master.best_cell,
                dist.master.results[dist.master.best_cell].center.g_fitness,
                static_cast<unsigned long long>(dist.master.heartbeat_cycles));
  }

  // --- sample from the best cell's neighborhood mixture ---------------------
  auto& best = trainer.cell(outcome.best_cell);
  const tensor::Tensor samples = best.sample_from_mixture(4);
  if (config.arch.image_dim == data::kImageDim) {
    std::printf("\nmixture sample from best cell (28x28 ASCII):\n%s\n",
                data::ascii_art(samples.row_span(0)).c_str());
    if (data::write_pgm_grid("quickstart_samples.pgm", samples.data(), 4, 2)) {
      std::printf("wrote quickstart_samples.pgm\n");
    }
  } else {
    std::printf("\nmixture sample mean intensity: %.3f (use --paper-arch for "
                "viewable 28x28 output)\n",
                tensor::mean(samples));
  }
  return 0;
}
