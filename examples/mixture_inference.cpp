// Train briefly, then use the final product the way a downstream user would:
// reconstruct the best neighborhood's generator mixture from the master's
// collected results and generate a sheet of samples from it — the
// "generative model returned ... defined by the sub-population with the
// highest quality" (Section II.B).
#include <cstdio>

#include "common/cli.hpp"
#include "core/distributed_trainer.hpp"
#include "core/mixture.hpp"
#include "core/workload.hpp"
#include "data/pgm.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  common::CliParser cli("mixture_inference: sample from the returned mixture");
  cli.add_flag("iterations", "8", "training epochs");
  cli.add_flag("samples", "600", "synthetic training samples");
  cli.add_flag("count", "16", "images to generate");
  cli.add_flag("out", "mixture_samples.pgm", "output PGM");
  if (!cli.parse(argc, argv)) return 1;

  core::TrainingConfig config = core::TrainingConfig::tiny();
  config.arch = nn::GanArch::paper();  // full 28x28 images for viewing
  config.batch_size = 50;
  config.grid_rows = config.grid_cols = 2;
  config.iterations = static_cast<std::uint32_t>(cli.get_int("iterations"));
  const auto dataset = core::make_matched_dataset(
      config, static_cast<std::size_t>(cli.get_int("samples")), 7);

  std::printf("training 2x2 grid (paper architecture), %u iterations...\n",
              config.iterations);
  const auto outcome = core::run_distributed(config, dataset);

  // The master's reduction returns the best cell; its neighborhood on the
  // 2x2 torus is {center, the two distinct neighbors}. Reassemble the
  // mixture from the collected center genomes.
  const int best = outcome.master.best_cell;
  core::Grid grid(static_cast<int>(config.grid_rows),
                  static_cast<int>(config.grid_cols));
  const auto members = grid.neighborhood_of(best);
  std::printf("best cell: %d, neighborhood:", best);
  for (const int m : members) std::printf(" %d", m);
  std::printf("\n");

  common::Rng rng(config.seed ^ 0xabcdULL);
  std::vector<nn::Sequential> generators;
  generators.reserve(members.size());
  for (const int member : members) {
    generators.push_back(nn::make_generator(config.arch, rng));
    generators.back().load_parameters(
        outcome.master.results[member].center.generator_params);
  }
  std::vector<nn::Sequential*> generator_ptrs;
  for (auto& g : generators) generator_ptrs.push_back(&g);

  core::MixtureWeights weights(members.size());
  const auto& evolved = outcome.master.results[best].mixture_weights;
  if (evolved.size() == members.size()) {
    weights.set_weights(evolved);
  }
  std::printf("mixture weights:");
  for (const double w : weights.weights()) std::printf(" %.3f", w);
  std::printf("\n");

  const std::size_t count = static_cast<std::size_t>(cli.get_int("count"));
  const tensor::Tensor samples = core::sample_mixture(
      weights, generator_ptrs, config.arch.latent_dim, count, rng);
  std::printf("sample (ASCII):\n%s", data::ascii_art(samples.row_span(0)).c_str());
  if (data::write_pgm_grid(cli.get("out"), samples.data(), count, 4)) {
    std::printf("wrote %s\n", cli.get("out").c_str());
  }
  return 0;
}
