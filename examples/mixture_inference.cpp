// Train briefly, then use the final product the way a downstream user would:
// save the trained grid as a checkpoint, restore it through the serving
// plane's warm model cache (serve::ModelCache -> core::CheckpointMixture) and
// draw a sheet of images with one seed-addressed batched mixture forward —
// the "generative model returned ... defined by the sub-population with the
// highest quality" (Section II.B). This is exactly the path cellgan_serve
// walks per request, so the printed samples are reproducible bit-for-bit by
// a serving daemon pointed at the same checkpoint and seed (per
// tensor-kernel kind); the example asserts that against the Session's own
// seeded sample_best.
#include <cstdio>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "core/grid.hpp"
#include "core/session.hpp"
#include "data/pgm.hpp"
#include "serve/model_cache.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.arch = nn::GanArch::paper();  // full 28x28 images for viewing
  defaults.config.batch_size = 50;
  defaults.config.iterations = 8;
  defaults.backend = core::Backend::kDistributed;

  common::CliParser cli("mixture_inference: sample from the returned mixture");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("count", "16", "images to generate");
  cli.add_flag("sample-seed", "42",
               "sampling seed (the serve-path request seed)");
  cli.add_flag("out-dir", "out", "artifact directory (checkpoint + PGM)");
  if (!cli.parse(argc, argv)) return 1;
  const auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;

  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("training %ux%u grid (paper architecture), %u iterations...\n",
              spec->config.grid_rows, spec->config.grid_cols,
              spec->config.iterations);
  const core::RunResult outcome = session.run();

  // The reduction returns the best cell; its neighborhood on the torus is the
  // mixture the checkpoint sampler reassembles.
  core::Grid grid(static_cast<int>(spec->config.grid_rows),
                  static_cast<int>(spec->config.grid_cols));
  const auto members = grid.neighborhood_of(outcome.best_cell);
  std::printf("best cell: %d, neighborhood:", outcome.best_cell);
  for (const int m : members) std::printf(" %d", m);
  std::printf("\n");

  // Hand-off artifact: the checkpoint is the model file a serving daemon
  // loads; writing it and restoring through the cache is the deployment
  // round trip, not a detour.
  const std::filesystem::path out_dir(cli.get("out-dir"));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string checkpoint_path = (out_dir / "mixture.ckpt").string();
  if (!core::save_checkpoint(checkpoint_path,
                             session.result_checkpoint(outcome))) {
    std::fprintf(stderr, "error: cannot write %s\n", checkpoint_path.c_str());
    return 1;
  }
  std::printf("checkpoint: %s\n", checkpoint_path.c_str());

  serve::ModelCache cache(2);
  const auto lookup = cache.get(checkpoint_path);
  if (lookup.model == nullptr) {
    std::fprintf(stderr, "error: %s\n", lookup.error.c_str());
    return 1;
  }
  std::printf("restored cell %d, mixture weights:", lookup.model->cell());
  for (const double w : lookup.model->weights().weights()) {
    std::printf(" %.3f", w);
  }
  std::printf("\n");

  const auto count = static_cast<std::size_t>(cli.get_int("count"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("sample-seed"));
  const tensor::Tensor samples = lookup.model->sample(count, seed);

  // The serving plane's promise, checked where a user can see it: the
  // restored model's draw equals the Session's own seeded sampler.
  const tensor::Tensor direct = session.sample_best(outcome, count, seed);
  const auto a = samples.data();
  const auto b = direct.data();
  bool identical = a.size() == b.size();
  for (std::size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i] == b[i];
  }
  std::printf("serve-path == session sample_best(seed): %s\n",
              identical ? "bit-identical" : "MISMATCH");
  if (!identical) return 1;

  std::printf("sample (ASCII):\n%s", data::ascii_art(samples.row_span(0)).c_str());
  const std::string pgm_path = (out_dir / "mixture_samples.pgm").string();
  if (data::write_pgm_grid(pgm_path, samples.data(), count, 4)) {
    std::printf("wrote %s\n", pgm_path.c_str());
  }
  return 0;
}
