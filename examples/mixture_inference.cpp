// Train briefly, then use the final product the way a downstream user would:
// sample a sheet of images from the best neighborhood's generator mixture —
// the "generative model returned ... defined by the sub-population with the
// highest quality" (Section II.B). The whole flow goes through the
// core::Session facade: train on the distributed backend, then
// Session::sample_best reconstructs the mixture from the master's collected
// center genomes and evolved mixture weights.
#include <cstdio>

#include "core/grid.hpp"
#include "core/session.hpp"
#include "data/pgm.hpp"

int main(int argc, char** argv) {
  using namespace cellgan;

  core::RunSpec defaults;
  defaults.config = core::TrainingConfig::tiny();
  defaults.config.arch = nn::GanArch::paper();  // full 28x28 images for viewing
  defaults.config.batch_size = 50;
  defaults.config.iterations = 8;
  defaults.backend = core::Backend::kDistributed;

  common::CliParser cli("mixture_inference: sample from the returned mixture");
  core::RunSpec::add_flags(cli, defaults);
  cli.add_flag("count", "16", "images to generate");
  cli.add_flag("out", "mixture_samples.pgm", "output PGM");
  if (!cli.parse(argc, argv)) return 1;
  const auto spec = core::RunSpec::from_cli(cli, defaults);
  if (!spec) return 1;

  core::Session session(*spec);
  if (!session.prepare()) {
    std::fprintf(stderr, "error: %s\n", session.error().c_str());
    return 1;
  }
  std::printf("training %ux%u grid (paper architecture), %u iterations...\n",
              spec->config.grid_rows, spec->config.grid_cols,
              spec->config.iterations);
  const core::RunResult outcome = session.run();

  // The reduction returns the best cell; its neighborhood on the torus is the
  // mixture Session::sample_best reassembles.
  core::Grid grid(static_cast<int>(spec->config.grid_rows),
                  static_cast<int>(spec->config.grid_cols));
  const auto members = grid.neighborhood_of(outcome.best_cell);
  std::printf("best cell: %d, neighborhood:", outcome.best_cell);
  for (const int m : members) std::printf(" %d", m);
  std::printf("\n");
  if (outcome.distributed()) {
    const auto& weights =
        outcome.cell_results[static_cast<std::size_t>(outcome.best_cell)]
            .mixture_weights;
    std::printf("mixture weights:");
    for (const double w : weights) std::printf(" %.3f", w);
    std::printf("\n");
  }

  const auto count = static_cast<std::size_t>(cli.get_int("count"));
  const tensor::Tensor samples = session.sample_best(outcome, count);
  std::printf("sample (ASCII):\n%s", data::ascii_art(samples.row_span(0)).c_str());
  if (data::write_pgm_grid(cli.get("out"), samples.data(), count, 4)) {
    std::printf("wrote %s\n", cli.get("out").c_str());
  }
  return 0;
}
